package agents

import (
	"testing"
)

// TestHierarchicalConsolidation builds a two-level ADM tree: 2 groups of 3
// node agents each, two group managers, one root. The root must see two
// summaries (not six node reports) whose means match the groups.
func TestHierarchicalConsolidation(t *testing.T) {
	c := NewCenter()
	const summaryTopic = "group-summaries"
	root, err := NewRootADM("root", summaryTopic, c, nil)
	if err != nil {
		t.Fatal(err)
	}

	groups := map[string][]float64{
		"rack-a": {0.2, 0.4, 0.6},
		"rack-b": {0.8, 0.9, 1.0},
	}
	managers := map[string]*GroupADM{}
	for group, loads := range groups {
		gm, err := NewGroupADM("adm-"+group, group, summaryTopic, c)
		if err != nil {
			t.Fatal(err)
		}
		managers[group] = gm
		for i, load := range loads {
			load := load
			ca, err := NewComponentAgent(
				groupAgentID(group, i), c,
				[]Sensor{SensorFunc{SensorName: "load", Fn: func() (float64, error) { return load, nil }}},
				nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			ca.StateTopic = GroupStateTopic(group)
			if _, err := ca.Poll(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Group managers consolidate their racks and publish summaries.
	for group, gm := range managers {
		if n := gm.Absorb(); n != 3 {
			t.Fatalf("group %s absorbed %d reports", group, n)
		}
		cons := gm.Consolidate()
		if cons.Agents != 3 {
			t.Fatalf("group %s sees %d agents", group, cons.Agents)
		}
		if _, err := gm.PublishSummary(); err != nil {
			t.Fatal(err)
		}
	}

	// Root sees exactly the two group summaries.
	if n := root.Absorb(); n != 2 {
		t.Fatalf("root absorbed %d messages, want 2 summaries", n)
	}
	cons := root.Consolidate()
	if cons.Agents != 2 {
		t.Fatalf("root sees %d reporters, want 2 group managers", cons.Agents)
	}
	// rack-a mean 0.4, rack-b mean 0.9 -> root mean of means 0.65.
	if m := cons.Mean["load"]; m < 0.649 || m > 0.651 {
		t.Fatalf("root mean load = %g, want 0.65", m)
	}
	if cons.Max["load"] < 0.899 || cons.ArgMax["load"] != "adm-rack-b" {
		t.Fatalf("root max = %g from %s", cons.Max["load"], cons.ArgMax["load"])
	}
	// Member counts propagate.
	if cons.Mean["members"] != 3 {
		t.Fatalf("mean members = %g", cons.Mean["members"])
	}
}

func groupAgentID(group string, i int) string {
	return group + "-node-" + string(rune('0'+i))
}

func TestGroupADMValidation(t *testing.T) {
	c := NewCenter()
	if _, err := NewGroupADM("x", "", "up", c); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewGroupADM("x", "g", "", c); err == nil {
		t.Error("empty parent topic accepted")
	}
	if _, err := NewGroupADM("dup", "g", "up", c); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGroupADM("dup", "g", "up", c); err == nil {
		t.Error("duplicate group ADM accepted")
	}
}

func TestGroupIsolation(t *testing.T) {
	// A group manager must not see another group's reports.
	c := NewCenter()
	gmA, err := NewGroupADM("adm-a", "a", "up", c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGroupADM("adm-b", "b", "up", c); err != nil {
		t.Fatal(err)
	}
	ca, err := NewComponentAgent("b-node", c,
		[]Sensor{fixedSensor("load", 0.5)}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ca.StateTopic = GroupStateTopic("b")
	if _, err := ca.Poll(); err != nil {
		t.Fatal(err)
	}
	if n := gmA.Absorb(); n != 0 {
		t.Fatalf("group a absorbed %d foreign reports", n)
	}
}

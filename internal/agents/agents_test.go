package agents

import (
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/policy"
)

func TestCenterRegisterSendReceive(t *testing.T) {
	c := NewCenter()
	inbox, err := c.Register("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(Message{From: "b", To: "a", Kind: "ping"}); err != nil {
		t.Fatal(err)
	}
	m := <-inbox
	if m.Kind != "ping" || m.From != "b" {
		t.Fatalf("received %+v", m)
	}
}

func TestCenterErrors(t *testing.T) {
	c := NewCenter()
	if _, err := c.Register("", 1); err == nil {
		t.Error("empty port accepted")
	}
	if _, err := c.Register("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("a", 1); err == nil {
		t.Error("duplicate port accepted")
	}
	if err := c.Send(Message{To: "nope"}); err == nil {
		t.Error("send to unknown port accepted")
	}
	if err := c.Send(Message{}); err == nil {
		t.Error("send without destination accepted")
	}
	if err := c.Subscribe("nope", "t"); err == nil {
		t.Error("subscribe of unknown port accepted")
	}
	if err := c.Subscribe("a", ""); err == nil {
		t.Error("empty topic accepted")
	}
	if err := c.Publish(Message{}); err == nil {
		t.Error("publish without topic accepted")
	}
}

func TestCenterMailboxOverflow(t *testing.T) {
	c := NewCenter()
	if _, err := c.Register("tiny", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(Message{From: "x", To: "tiny"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(Message{From: "x", To: "tiny"}); err == nil {
		t.Error("overflowing mailbox accepted")
	}
}

func TestCenterPublishSubscribe(t *testing.T) {
	c := NewCenter()
	in1, _ := c.Register("s1", 4)
	in2, _ := c.Register("s2", 4)
	if _, err := c.Register("pub", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("s1", "news"); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("s2", "news"); err != nil {
		t.Fatal(err)
	}
	// The publisher itself subscribed should not receive its own message.
	if err := c.Subscribe("pub", "news"); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(Message{From: "pub", Topic: "news", Kind: "event"}); err != nil {
		t.Fatal(err)
	}
	if m := <-in1; m.Kind != "event" || m.To != "s1" {
		t.Fatalf("s1 received %+v", m)
	}
	if m := <-in2; m.Kind != "event" || m.To != "s2" {
		t.Fatalf("s2 received %+v", m)
	}
}

func TestCenterUnregisterClosesAndUnsubscribes(t *testing.T) {
	c := NewCenter()
	in, _ := c.Register("a", 4)
	if err := c.Subscribe("a", "t"); err != nil {
		t.Fatal(err)
	}
	c.Unregister("a")
	if _, ok := <-in; ok {
		t.Fatal("channel not closed")
	}
	if err := c.Send(Message{From: "x", To: "a"}); err == nil {
		t.Fatal("send to unregistered port accepted")
	}
	// Publishing to the topic must not fail on the removed subscriber.
	if _, err := c.Register("pub", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(Message{From: "pub", Topic: "t"}); err != nil {
		t.Fatalf("publish after unregister: %v", err)
	}
}

func TestEncodeDecode(t *testing.T) {
	m := Message{Kind: "state", Payload: Encode(StateReport{Agent: "a", Seq: 3})}
	var r StateReport
	if err := Decode(m, &r); err != nil {
		t.Fatal(err)
	}
	if r.Agent != "a" || r.Seq != 3 {
		t.Fatalf("decoded %+v", r)
	}
}

func fixedSensor(name string, v float64) Sensor {
	return SensorFunc{SensorName: name, Fn: func() (float64, error) { return v, nil }}
}

func TestComponentAgentPollPublishesState(t *testing.T) {
	c := NewCenter()
	watcher, _ := c.Register("watcher", 16)
	if err := c.Subscribe("watcher", TopicState); err != nil {
		t.Fatal(err)
	}
	ca, err := NewComponentAgent("ca-1", c, []Sensor{fixedSensor("load", 0.42)}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	report, err := ca.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if report.Readings["load"] != 0.42 || report.Seq != 1 {
		t.Fatalf("report %+v", report)
	}
	m := <-watcher
	var got StateReport
	if err := Decode(m, &got); err != nil {
		t.Fatal(err)
	}
	if got.Agent != "ca-1" || got.Readings["load"] != 0.42 {
		t.Fatalf("published %+v", got)
	}
}

func TestComponentAgentThresholdEventsLatch(t *testing.T) {
	c := NewCenter()
	events, _ := c.Register("ev", 16)
	if err := c.Subscribe("ev", TopicEvents); err != nil {
		t.Fatal(err)
	}
	load := 0.2
	sensor := SensorFunc{SensorName: "load", Fn: func() (float64, error) { return load, nil }}
	hi := 0.8
	ca, err := NewComponentAgent("ca-2", c,
		[]Sensor{sensor}, nil,
		[]EventRule{{Sensor: "load", Above: &hi, Event: "overload"}})
	if err != nil {
		t.Fatal(err)
	}
	poll := func() int {
		t.Helper()
		if _, err := ca.Poll(); err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			select {
			case <-events:
				n++
			default:
				return n
			}
		}
	}
	if n := poll(); n != 0 {
		t.Fatalf("no-threshold poll fired %d events", n)
	}
	load = 0.9
	if n := poll(); n != 1 {
		t.Fatalf("crossing poll fired %d events, want 1", n)
	}
	// Still above: latched, no repeat.
	if n := poll(); n != 0 {
		t.Fatalf("latched poll fired %d events", n)
	}
	// Drop below and cross again: fires again.
	load = 0.2
	poll()
	load = 0.95
	if n := poll(); n != 1 {
		t.Fatalf("re-crossing poll fired %d events, want 1", n)
	}
}

func TestComponentAgentCommands(t *testing.T) {
	c := NewCenter()
	applied := map[string]float64{}
	act := ActuatorFunc{ActuatorName: "repartition", Fn: func(p map[string]float64) error {
		for k, v := range p {
			applied[k] = v
		}
		return nil
	}}
	ca, err := NewComponentAgent("ca-3", c, nil, []Actuator{act}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Send(Message{From: "adm", To: "ca-3", Kind: "command",
		Payload: Encode(Command{Actuator: "repartition", Params: map[string]float64{"granularity": 8}})})
	if err != nil {
		t.Fatal(err)
	}
	// Non-command messages are ignored.
	if err := c.Send(Message{From: "adm", To: "ca-3", Kind: "noise"}); err != nil {
		t.Fatal(err)
	}
	n, err := ca.DrainInbox()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || applied["granularity"] != 8 {
		t.Fatalf("drained %d commands, applied %v", n, applied)
	}
	// Unknown actuator is an error.
	if err := ca.HandleCommand(Command{Actuator: "nope"}); err == nil {
		t.Fatal("unknown actuator accepted")
	}
}

func TestADMConsolidatesAndDirects(t *testing.T) {
	c := NewCenter()
	adm, err := NewADM("adm", c, policy.Table2())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, load float64) *ComponentAgent {
		ca, err := NewComponentAgent(id, c, []Sensor{fixedSensor("load", load)}, []Actuator{
			ActuatorFunc{ActuatorName: "noop", Fn: func(map[string]float64) error { return nil }},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ca
	}
	a1, a2, a3 := mk("n1", 0.2), mk("n2", 0.9), mk("n3", 0.4)
	for _, ca := range []*ComponentAgent{a1, a2, a3} {
		if _, err := ca.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if n := adm.Absorb(); n != 3 {
		t.Fatalf("absorbed %d messages", n)
	}
	cons := adm.Consolidate()
	if cons.Agents != 3 {
		t.Fatalf("agents = %d", cons.Agents)
	}
	if cons.Max["load"] != 0.9 || cons.ArgMax["load"] != "n2" {
		t.Fatalf("max = %v argmax = %v", cons.Max, cons.ArgMax)
	}
	if mean := cons.Mean["load"]; mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean = %g", mean)
	}
	// Policy decision with the octant attribute.
	decisions := adm.Decide(map[string]interface{}{"octant": "VI"}, "select-partitioner")
	if len(decisions) != 1 || decisions[0].Action.Target != "pBD-ISP" {
		t.Fatalf("decisions = %+v", decisions)
	}
	// Broadcast reaches all agents.
	if err := adm.Broadcast(Command{Actuator: "noop"}); err != nil {
		t.Fatal(err)
	}
	for _, ca := range []*ComponentAgent{a1, a2, a3} {
		if n, err := ca.DrainInbox(); err != nil || n != 1 {
			t.Fatalf("%s drained %d err=%v", ca.ID, n, err)
		}
	}
}

func TestADMEventFlow(t *testing.T) {
	c := NewCenter()
	adm, err := NewADM("adm", c, nil)
	if err != nil {
		t.Fatal(err)
	}
	hi := 0.5
	load := 0.9
	ca, err := NewComponentAgent("ca", c,
		[]Sensor{SensorFunc{SensorName: "load", Fn: func() (float64, error) { return load, nil }}},
		nil, []EventRule{{Sensor: "load", Above: &hi, Event: "overload"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Poll(); err != nil {
		t.Fatal(err)
	}
	adm.Absorb()
	evs := adm.PendingEvents()
	if len(evs) != 1 || evs[0].Name != "overload" || evs[0].Agent != "ca" {
		t.Fatalf("events = %+v", evs)
	}
	if len(adm.PendingEvents()) != 0 {
		t.Fatal("events not cleared")
	}
	// Decide without a policy base returns nothing.
	if d := adm.Decide(nil, "select-partitioner"); d != nil {
		t.Fatalf("nil-policy decisions = %+v", d)
	}
}

func TestTemplateRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Template{}); err == nil {
		t.Error("unnamed template accepted")
	}
	mustReg := func(tpl Template) {
		t.Helper()
		if err := r.Register(tpl); err != nil {
			t.Fatal(err)
		}
	}
	mustReg(Template{Name: "perf-redundant", Provides: map[string]string{"attribute": "performance", "scheme": "active-redundancy"}})
	mustReg(Template{Name: "perf-migrate", Provides: map[string]string{"attribute": "performance", "scheme": "migration"}})
	mustReg(Template{Name: "ft-passive", Provides: map[string]string{"attribute": "fault-tolerance"}})
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	got := r.Discover(map[string]string{"attribute": "performance"})
	if len(got) != 2 {
		t.Fatalf("performance templates = %d", len(got))
	}
	got = r.Discover(map[string]string{"attribute": "performance", "scheme": "migration"})
	if len(got) != 1 || got[0].Name != "perf-migrate" {
		t.Fatalf("specific discovery = %+v", got)
	}
	if got := r.Discover(map[string]string{"attribute": "security"}); len(got) != 0 {
		t.Fatalf("unsatisfiable discovery = %+v", got)
	}
	if got := r.Discover(nil); len(got) != 3 {
		t.Fatalf("open discovery = %d", len(got))
	}
	if !r.Deregister("ft-passive") || r.Deregister("ft-passive") {
		t.Fatal("deregister semantics wrong")
	}
}

func TestTemplateDiscoveryOverMessageCenter(t *testing.T) {
	c := NewCenter()
	r := NewRegistry()
	if err := r.Register(Template{Name: "t1", Provides: map[string]string{"attribute": "performance"}}); err != nil {
		t.Fatal(err)
	}
	go r.Serve(c)
	// Wait until the registry port appears.
	inbox, err := c.Register("client", 8)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Send(Message{From: "client", To: RegistryPort, Kind: "noop"}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("registry port never appeared")
		}
		time.Sleep(time.Millisecond)
	}
	got, err := DiscoverVia(c, "client", inbox, map[string]string{"attribute": "performance"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "t1" {
		t.Fatalf("discovered %+v", got)
	}
}

package agents

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"
	"unicode/utf8"

	"github.com/pragma-grid/pragma/internal/chaos"
)

// halfConn adapts a bytes.Buffer into the net.Conn the chaos wrapper
// expects, so frame encodings can be pushed through the corruption path
// and captured as fuzz seeds.
type halfConn struct {
	net.Conn // nil; only Write is used
	buf      bytes.Buffer
}

func (h *halfConn) Write(p []byte) (int, error) { return h.buf.Write(p) }

// corruptedFrames runs the canonical wire frames through a chaos
// connection with certain corruption, yielding the bit-flipped encodings
// real links produce. These seed the decode fuzzer with realistic
// near-valid input.
func corruptedFrames(seed int64) [][]byte {
	frames := []frame{
		{Op: "register", Port: "node-0"},
		{Op: "subscribe", Port: "node-0", Topic: "events"},
		{Op: "send", Msg: Message{From: "a", To: "b", Kind: "state", Payload: json.RawMessage(`{"load":0.5}`)}},
		{Op: "publish", Msg: Message{From: "a", Topic: "events", Kind: "event"}},
		{Op: "ping"},
		{Op: "error", Err: "boom"},
	}
	var out [][]byte
	for i, f := range frames {
		hc := &halfConn{}
		cc := chaos.Wrap(hc, chaos.Config{Seed: seed + int64(i), CorruptRate: 1})
		if err := json.NewEncoder(cc).Encode(f); err != nil {
			continue
		}
		out = append(out, append([]byte(nil), hc.buf.Bytes()...))
	}
	return out
}

// FuzzFrameDecode feeds arbitrary bytes into a Center's wire handler and
// requires that malformed input can never panic the broker or leave it
// unusable: after the connection dies, local registration and delivery
// must still work.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte(`{"op":"register","port":"n"}` + "\n"))
	f.Add([]byte(`{"op":"send","msg":{"from":"a","to":"b","kind":"k"}}` + "\n"))
	f.Add([]byte(`{"op":"subscribe","port":"n","topic":"t"}` + "\n"))
	f.Add([]byte(`{"op":"ping"}` + "\n" + `{"op":"publish","msg":{"from":"a","topic":"t","kind":"k"}}` + "\n"))
	f.Add([]byte(`{"op":"register","port":`))
	f.Add([]byte("\x00\xff{not json at all"))
	f.Add([]byte(`{"op":"deliver","msg":{"payload":{"nested":[1,2,{"x":null}]}}}` + "\n"))
	for _, b := range corruptedFrames(1) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCenter(WithCenterErrorHandler(func(error) {}))
		client, server := net.Pipe()
		done := make(chan struct{})
		go func() {
			c.handleConn(server)
			close(done)
		}()
		// Drain broker responses so its writes never block the pipe.
		go func() {
			buf := make([]byte, 4096)
			for {
				if _, err := client.Read(buf); err != nil {
					return
				}
			}
		}()
		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		client.Write(data) // error is fine: handler may have hung up
		client.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("wire handler did not terminate")
		}
		// The broker must survive whatever the bytes did: a local port
		// still registers (the dead connection's remote ports were
		// reclaimed) and routes traffic.
		ch, err := c.Register("probe", 1)
		if err != nil {
			t.Fatalf("center unusable after fuzz input: %v", err)
		}
		if err := c.Send(Message{From: "probe", To: "probe", Kind: "alive"}); err != nil {
			t.Fatalf("center cannot route after fuzz input: %v", err)
		}
		select {
		case <-ch:
		case <-time.After(2 * time.Second):
			t.Fatal("local delivery broken after fuzz input")
		}
	})
}

// FuzzFrameRoundTrip checks that any frame built from fuzzer-chosen
// fields survives a wire encode/decode cycle unchanged, so the protocol
// cannot silently mangle port names, topics or payloads.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("register", "node-0", "", "", "", "", `{"x":1}`)
	f.Add("send", "", "events", "a", "b", "state", `null`)
	f.Add("error", "", "", "", "", "", ``)
	f.Fuzz(func(t *testing.T, op, port, topic, from, to, kind, payload string) {
		in := frame{
			Op:    op,
			Port:  port,
			Topic: topic,
			Msg:   Message{From: from, To: to, Kind: kind},
		}
		if json.Valid([]byte(payload)) && utf8.ValidString(payload) {
			in.Msg.Payload = json.RawMessage(payload)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(in); err != nil {
			t.Skip() // unencodable strings (invalid UTF-8) are not wire frames
		}
		var out frame
		if err := json.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		// JSON encoding replaces invalid UTF-8 with U+FFFD; normalize the
		// input the same way before comparing.
		norm := func(s string) string { return string([]rune(s)) }
		if out.Op != norm(in.Op) || out.Port != norm(in.Port) || out.Topic != norm(in.Topic) {
			t.Fatalf("frame fields changed: %+v -> %+v", in, out)
		}
		if out.Msg.From != norm(in.Msg.From) || out.Msg.To != norm(in.Msg.To) || out.Msg.Kind != norm(in.Msg.Kind) {
			t.Fatalf("message fields changed: %+v -> %+v", in.Msg, out.Msg)
		}
		if in.Msg.Payload != nil && !bytes.Equal(compactJSON(t, in.Msg.Payload), compactJSON(t, out.Msg.Payload)) {
			t.Fatalf("payload changed: %s -> %s", in.Msg.Payload, out.Msg.Payload)
		}
	})
}

func compactJSON(t *testing.T, raw json.RawMessage) []byte {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("invalid JSON slipped through: %v", err)
	}
	return buf.Bytes()
}

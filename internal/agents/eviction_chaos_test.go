package agents

import (
	"fmt"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/chaos"
)

// TestEvictionReconnectReplayUnderChaos drives the full eviction cycle the
// fleet leans on, over a corrupting link: a client goes silent past the
// broker's heartbeat window and is evicted (the eviction counter must say
// so), then its reconnect machinery re-registers the same mailbox and
// replays buffered frames — all while seeded chaos corrupts wire bytes, so
// recovery must also survive decode-failure connection teardowns.
func TestEvictionReconnectReplayUnderChaos(t *testing.T) {
	center, addr := startCenterOpts(t,
		WithHeartbeatTimeout(150*time.Millisecond),
		WithCenterWriteTimeout(time.Second))
	sink, err := center.Register("sink", 64)
	if err != nil {
		t.Fatal(err)
	}
	dialer := chaos.Dialer(chaos.Config{
		Seed:        7,
		CorruptRate: 0.02,
		MaxFaults:   5, // bounded: the network must eventually heal
	})
	// No heartbeats: this client WILL go silent and WILL be evicted. Its
	// reconnect+replay machinery is what keeps the mailbox usable anyway.
	cl, err := Dial(addr,
		WithDialer(dialer),
		WithReconnect(true),
		WithBackoff(5*time.Millisecond, 50*time.Millisecond),
		WithOpTimeout(2*time.Second),
		WithWriteTimeout(time.Second),
		WithSendBuffer(256),
		WithErrorHandler(func(error) {}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	in, err := cl.Register("src", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(Message{From: "src", To: "sink", Kind: "baseline"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sink:
		if m.Kind != "baseline" {
			t.Fatalf("baseline got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("baseline never delivered")
	}

	before := metricEvictions.Value()

	// Go silent well past the heartbeat window; the broker must evict.
	// Poll the counter rather than sleeping a fixed time: eviction happens
	// on the broker's read-deadline schedule, not ours.
	deadline := time.Now().Add(10 * time.Second)
	for metricEvictions.Value() == before {
		if time.Now().After(deadline) {
			t.Fatal("silent client never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := metricEvictions.Value(); got <= before {
		t.Fatalf("evictions = %d, want > %d", got, before)
	}

	// The evicted client's next sends ride the reconnect: frames buffer,
	// the link re-dials (through the corrupting dialer), "src" re-registers
	// and the buffer replays. Nothing may be lost.
	const sent = 5
	for i := 0; i < sent; i++ {
		if err := cl.Send(Message{From: "src", To: "sink", Kind: fmt.Sprintf("m-%d", i)}); err != nil {
			t.Fatalf("post-eviction send %d rejected: %v", i, err)
		}
	}
	want := map[string]bool{}
	for i := 0; i < sent; i++ {
		want[fmt.Sprintf("m-%d", i)] = true
	}
	deadline = time.Now().Add(15 * time.Second)
	for len(want) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("messages lost across eviction: %v", want)
		}
		select {
		case m := <-sink:
			delete(want, m.Kind)
		case <-time.After(20 * time.Millisecond):
		}
	}

	// And the reverse direction must land in the ORIGINAL mailbox channel:
	// re-registration reuses it. Keep nudging until one arrives (sends into
	// a not-yet-reregistered port error out on the broker side).
	deadline = time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("reverse direction never recovered after eviction")
		}
		center.Send(Message{From: "sink", To: "src", Kind: "back"})
		select {
		case m := <-in:
			if m.Kind != "back" {
				t.Fatalf("reverse got %+v", m)
			}
			if got := cl.Stats().Reconnects; got < 1 {
				t.Fatalf("Reconnects = %d, want >= 1", got)
			}
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Package agents implements Pragma's active control network (§3.4): a
// CATALINA-style Message Center with per-component mailbox ports, component
// agents with embedded sensors and actuators, an application delegated
// manager (ADM) that consolidates local decisions hierarchically, and a
// template registry with discovery.
//
// The Message Center supports two deployments: in-process (agents share a
// Center) and distributed (agents connect to a Center over TCP, emulating a
// multi-node control network on one machine — see tcp.go). Agent code is
// identical in both cases: everything speaks the Port interface.
package agents

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Message is the unit of communication in the control network. "In the MC,
// every component is assigned a port which acts as its mailbox. Every
// message directed to a component is placed on this mailbox."
type Message struct {
	// From is the sender's port name.
	From string `json:"from"`
	// To is the destination port; empty for topic publications.
	To string `json:"to,omitempty"`
	// Topic routes publish/subscribe traffic; empty for direct messages.
	Topic string `json:"topic,omitempty"`
	// Kind labels the payload ("state", "event", "command", ...).
	Kind string `json:"kind"`
	// Payload is the JSON-encoded message body.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Encode marshals a payload value for a Message.
func Encode(v interface{}) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		// Payload types are under our control; failure is programmer error.
		panic(fmt.Sprintf("agents: encode payload: %v", err))
	}
	return data
}

// Decode unmarshals a message payload into v.
func Decode(m Message, v interface{}) error {
	return json.Unmarshal(m.Payload, v)
}

// Port is the capability agents use to communicate: register a mailbox,
// send direct messages, and publish/subscribe on topics. Both the
// in-process Center and the TCP Client implement it.
type Port interface {
	// Register creates mailbox `port` and returns its delivery channel.
	Register(port string, buffer int) (<-chan Message, error)
	// Unregister removes the mailbox and closes its channel.
	Unregister(port string)
	// Send places a direct message on the destination port's mailbox.
	Send(m Message) error
	// Subscribe adds the port to a topic's subscriber list.
	Subscribe(port, topic string) error
	// Publish delivers the message to every subscriber of m.Topic.
	Publish(m Message) error
}

// Center is the Message Center: the broker owning all mailboxes.
type Center struct {
	mu     sync.RWMutex
	local  map[string]chan Message
	remote map[string]*wireConn // ports hosted by TCP clients
	subs   map[string]map[string]bool
	closed bool

	// Wire options, fixed at construction.
	heartbeatTimeout time.Duration
	writeTimeout     time.Duration
	onError          func(error)

	// onDisconnect, when set, is told which remote ports vanished when a
	// TCP client's connection tore down (eviction, link loss, or clean
	// close). Settable after construction — see OnDisconnect.
	onDisconnect func(ports []string)
}

// CenterOption configures the Message Center's wire behavior.
type CenterOption func(*Center)

// WithHeartbeatTimeout arms server-side liveness eviction: a TCP client
// that sends no frame (heartbeats included) for the given duration is
// disconnected and its ports reclaimed. 0 (the default) disables eviction.
func WithHeartbeatTimeout(d time.Duration) CenterOption {
	return func(c *Center) { c.heartbeatTimeout = d }
}

// WithCenterWriteTimeout arms a per-frame write deadline on server-side
// wire writes, so one stalled client cannot wedge delivery to it forever.
func WithCenterWriteTimeout(d time.Duration) CenterOption {
	return func(c *Center) { c.writeTimeout = d }
}

// WithCenterErrorHandler installs a sink for wire-level failures observed
// by connection handlers (decode errors, evictions). The handler runs on
// handler goroutines and must not block.
func WithCenterErrorHandler(fn func(error)) CenterOption {
	return func(c *Center) { c.onError = fn }
}

// NewCenter creates an empty Message Center.
func NewCenter(opts ...CenterOption) *Center {
	c := &Center{
		local:  make(map[string]chan Message),
		remote: make(map[string]*wireConn),
		subs:   make(map[string]map[string]bool),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// reportErr routes a wire-level failure to the configured handler.
func (c *Center) reportErr(err error) {
	if c.onError != nil {
		c.onError(err)
	}
}

// OnDisconnect installs a handler invoked with the remote port names
// reclaimed when a TCP client's connection tears down — broker-side
// eviction for heartbeat silence, link loss, or a clean close. The fleet
// router uses it to begin failover the moment a worker's link dies instead
// of waiting out its own heartbeat window. The handler runs on connection
// handler goroutines and must not block; nil removes it.
func (c *Center) OnDisconnect(fn func(ports []string)) {
	c.mu.Lock()
	c.onDisconnect = fn
	c.mu.Unlock()
}

// Register implements Port.
func (c *Center) Register(port string, buffer int) (<-chan Message, error) {
	if port == "" {
		return nil, fmt.Errorf("agents: empty port name")
	}
	if buffer < 1 {
		buffer = 16
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("agents: message center closed")
	}
	if _, ok := c.local[port]; ok {
		return nil, fmt.Errorf("agents: port %q already registered", port)
	}
	if _, ok := c.remote[port]; ok {
		return nil, fmt.Errorf("agents: port %q already registered remotely", port)
	}
	ch := make(chan Message, buffer)
	c.local[port] = ch
	return ch, nil
}

// Unregister implements Port.
func (c *Center) Unregister(port string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.local[port]; ok {
		delete(c.local, port)
		close(ch)
	}
	for _, subscribers := range c.subs {
		delete(subscribers, port)
	}
}

// Send implements Port.
func (c *Center) Send(m Message) error {
	if m.To == "" {
		return fmt.Errorf("agents: direct message without destination")
	}
	metricSends.Inc()
	c.mu.RLock()
	ch, okL := c.local[m.To]
	rc, okR := c.remote[m.To]
	c.mu.RUnlock()
	switch {
	case okL:
		select {
		case ch <- m:
			return nil
		default:
			metricMailboxFull.Inc()
			return fmt.Errorf("agents: mailbox %q full", m.To)
		}
	case okR:
		return rc.deliver(m)
	default:
		return fmt.Errorf("agents: no such port %q", m.To)
	}
}

// Subscribe implements Port.
func (c *Center) Subscribe(port, topic string) error {
	if topic == "" {
		return fmt.Errorf("agents: empty topic")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, okL := c.local[port]
	_, okR := c.remote[port]
	if !okL && !okR {
		return fmt.Errorf("agents: subscribe: no such port %q", port)
	}
	if c.subs[topic] == nil {
		c.subs[topic] = make(map[string]bool)
	}
	c.subs[topic][port] = true
	return nil
}

// Publish implements Port. Delivery is best-effort per subscriber: a full
// mailbox drops that copy and publication continues; the first delivery
// error is returned.
func (c *Center) Publish(m Message) error {
	if m.Topic == "" {
		return fmt.Errorf("agents: publish without topic")
	}
	metricPublishes.Inc()
	c.mu.RLock()
	targets := make([]string, 0, len(c.subs[m.Topic]))
	for port := range c.subs[m.Topic] {
		targets = append(targets, port)
	}
	c.mu.RUnlock()
	var firstErr error
	for _, port := range targets {
		if port == m.From {
			continue // no echo to the publisher
		}
		copy := m
		copy.To = port
		if err := c.Send(copy); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// QueueDepth returns the number of messages currently queued across the
// center's local mailboxes — the control network's aggregate backlog.
// Remote ports queue on their owning client, not here.
func (c *Center) QueueDepth() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, ch := range c.local {
		n += len(ch)
	}
	return n
}

// Ports returns the registered port names (local and remote), mainly for
// monitoring and tests.
func (c *Center) Ports() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.local)+len(c.remote))
	for p := range c.local {
		out = append(out, p)
	}
	for p := range c.remote {
		out = append(out, p)
	}
	return out
}

var _ Port = (*Center)(nil)

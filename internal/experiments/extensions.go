package experiments

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/astro"
	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/perf"
	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/samr"
)

// This file holds the extension experiments that go beyond the paper's
// tables: the cross-application study over all three driver applications
// of §2, and PF-based application runtime prediction (research challenge 1
// of §1: "anticipate the operations and expected performance of
// applications for a given workload and system configuration").

// CrossAppRow summarizes one driver application's interaction with Pragma.
type CrossAppRow struct {
	Application string
	// Occupancy counts snapshots per octant (I..VIII in order).
	Occupancy [8]int
	// AdaptiveTime and BestStaticTime compare the meta-partitioner against
	// the best single partitioner for this application.
	AdaptiveTime   float64
	BestStaticTime float64
	BestStatic     string
	// Switches counts the adaptive run's partitioner changes.
	Switches int
}

// CrossApplication runs all three §2 driver applications — RM3D, galaxy
// formation, and the supernova — through characterization and replay on
// the same machine, showing how application-specific the octant
// trajectories and partitioner choices are.
func CrossApplication(nprocs int) ([]CrossAppRow, error) {
	rmTrace, err := TraceFor(rm3d.SmallConfig())
	if err != nil {
		return nil, err
	}
	acfg := astro.SmallConfig()
	galaxy, err := astro.GenerateTrace(acfg, astro.NewGalaxy(acfg, 12))
	if err != nil {
		return nil, err
	}
	supernova, err := astro.GenerateTrace(acfg, astro.NewSupernova(acfg))
	if err != nil {
		return nil, err
	}
	machine := cluster.SP2(nprocs)
	var rows []CrossAppRow
	for _, tr := range []*samr.Trace{rmTrace, galaxy, supernova} {
		row := CrossAppRow{Application: tr.Name}
		chars, err := octant.CharacterizeTrace(tr, octant.DefaultThresholds(), 3)
		if err != nil {
			return nil, err
		}
		for _, c := range chars {
			row.Occupancy[int(c.Octant)-1]++
		}
		rc := core.RunConfig{Machine: machine, NProcs: nprocs}
		adaptive, err := core.Run(tr, core.Adaptive{ImbalanceGuard: 20}, rc)
		if err != nil {
			return nil, fmt.Errorf("%s adaptive: %w", tr.Name, err)
		}
		row.AdaptiveTime = adaptive.TotalTime
		row.Switches = adaptive.Switches
		for _, p := range []partition.Partitioner{partition.SFC{}, partition.GMISPSP{}, partition.PBDISP{}} {
			res, err := core.Run(tr, core.Static{P: p}, rc)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", tr.Name, p.Name(), err)
			}
			if row.BestStatic == "" || res.TotalTime < row.BestStaticTime {
				row.BestStatic, row.BestStaticTime = p.Name(), res.TotalTime
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PredictionRow compares PF-predicted against simulated runtime at one
// processor count.
type PredictionRow struct {
	Procs        int
	Predicted    float64
	Simulated    float64
	PercentError float64
	// Extrapolated marks processor counts outside the training set.
	Extrapolated bool
}

// PFRuntimePrediction applies the paper's PF methodology at the
// application level: simulated runtimes at small processor counts are the
// "measurements", a neural PF of runtime versus processor count is fitted
// from them, and the PF then predicts runtimes at larger counts —
// anticipating application performance for configurations that were never
// run. Interpolation should land within a few percent; extrapolation
// degrades gracefully.
func PFRuntimePrediction(cfg rm3d.Config) ([]PredictionRow, error) {
	tr, err := TraceFor(cfg)
	if err != nil {
		return nil, err
	}
	simulate := func(n int) (float64, error) {
		res, err := core.Run(tr, core.Static{P: partition.GMISPSP{}},
			core.RunConfig{Machine: cluster.SP2(n), NProcs: n, WorkModel: cfg.WorkModel})
		if err != nil {
			return 0, err
		}
		return res.TotalTime, nil
	}
	trainProcs := []int{2, 3, 4, 6, 8, 12, 16}
	var xs, ys []float64
	for _, n := range trainProcs {
		t, err := simulate(n)
		if err != nil {
			return nil, err
		}
		// Fit in the work-per-processor domain, where runtime is nearly
		// linear, as the PF attribute.
		xs = append(xs, 1/float64(n))
		ys = append(ys, t)
	}
	pf, err := perf.TrainNeural("runtime-vs-procs", xs, ys, perf.TrainOptions{Seed: 6, Epochs: 12000})
	if err != nil {
		return nil, err
	}
	var rows []PredictionRow
	for _, n := range []int{4, 8, 16, 24, 32} {
		sim, err := simulate(n)
		if err != nil {
			return nil, err
		}
		pred := pf.Eval(1 / float64(n))
		extrapolated := n > trainProcs[len(trainProcs)-1]
		rows = append(rows, PredictionRow{
			Procs:        n,
			Predicted:    pred,
			Simulated:    sim,
			PercentError: perf.PercentError(pred, sim),
			Extrapolated: extrapolated,
		})
	}
	return rows, nil
}

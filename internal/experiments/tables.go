package experiments

import (
	"fmt"
	"math/rand"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/perf"
	"github.com/pragma-grid/pragma/internal/policy"
	"github.com/pragma-grid/pragma/internal/rm3d"
)

// ---------------------------------------------------------------------------
// Table 1 — Accuracy of the Performance Functions.

// Table1Row is one line of Table 1: predicted versus measured end-to-end
// delay of the PC1 -> switch -> PC2 pipeline.
type Table1Row struct {
	DataSize     float64 // bytes
	Predicted    float64 // seconds, composed PF (Eq. 2)
	Measured     float64 // seconds, noisy end-to-end measurement
	PercentError float64
}

// Table1 fits neural PFs to the example system's components, composes them,
// and evaluates prediction accuracy at the paper's five data sizes.
func Table1() ([]Table1Row, error) {
	comps := perf.ExampleSystem(0.02)
	trainSizes := []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100, 1200}
	e2e, _, err := perf.FitComponentPFs(comps, trainSizes, 6, 42)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(7))
	var rows []Table1Row
	for _, d := range []float64{200, 400, 600, 800, 1000} {
		measured := perf.MeasureEndToEnd(comps, d, rng)
		predicted := e2e.Eval(d)
		rows = append(rows, Table1Row{
			DataSize:     d,
			Predicted:    predicted,
			Measured:     measured,
			PercentError: perf.PercentError(predicted, measured),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 2 — Recommendations for mapping octants onto partitioning schemes.

// Table2Row is one line of Table 2.
type Table2Row struct {
	Octant  string
	Schemes []string
}

// Table2 returns the octant -> partitioner policy, as queried from the
// policy knowledge base (not the raw table), so the experiment exercises
// the associative query path.
func Table2() []Table2Row {
	base := policy.Table2()
	var rows []Table2Row
	for _, oct := range []string{"I", "II", "III", "IV", "V", "VI", "VII", "VIII"} {
		var schemes []string
		for _, s := range base.Query(map[string]interface{}{"octant": oct}) {
			if s.Rule.Then.Kind == "select-partitioner" {
				schemes = append(schemes, s.Rule.Then.Target)
			}
		}
		rows = append(rows, Table2Row{Octant: oct, Schemes: schemes})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Table 3 — Characterizing RM3D application run-time state.

// Table3Row is one line of Table 3: the octant state and selected
// partitioner at a sampled time-step of the RM3D run.
type Table3Row struct {
	TimeStep    int
	Octant      string
	Partitioner string
}

// Table3SampleSteps are the time-steps the paper samples.
var Table3SampleSteps = []int{0, 5, 25, 106, 137, 162, 174, 201}

// Table3 characterizes the RM3D adaptation trace at the paper's sampled
// time-steps.
func Table3() ([]Table3Row, error) {
	tr, err := PaperTrace()
	if err != nil {
		return nil, err
	}
	meta := core.NewMetaPartitioner()
	var rows []Table3Row
	for _, ts := range Table3SampleSteps {
		p, o, err := meta.SelectAt(tr, ts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{TimeStep: ts, Octant: o.String(), Partitioner: p.Name()})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 4 — Partitioner performance for RM3D on 64 processors.

// Table4Row is one line of Table 4.
type Table4Row struct {
	Partitioner   string
	Runtime       float64 // simulated seconds
	MaxImbalance  float64 // percent
	AMREfficiency float64 // percent
}

// Table4Config parameterizes the Table 4 replay.
type Table4Config struct {
	Trace  rm3d.Config
	NProcs int
}

// DefaultTable4Config is the paper's setup: the RM3D trace on 64 processors
// of the simulated SP2.
func DefaultTable4Config() Table4Config {
	return Table4Config{Trace: rm3d.DefaultConfig(), NProcs: 64}
}

// SmallTable4Config is a reduced setup for fast tests.
func SmallTable4Config() Table4Config {
	return Table4Config{Trace: rm3d.SmallConfig(), NProcs: 16}
}

// Table4 replays the RM3D trace under SFC, G-MISP+SP, pBD-ISP and the
// adaptive meta-partitioner and reports runtime, maximum load imbalance and
// AMR efficiency.
func Table4(cfg Table4Config) ([]Table4Row, error) {
	tr, err := TraceFor(cfg.Trace)
	if err != nil {
		return nil, err
	}
	machine := table4Machine(cfg.NProcs)
	rc := core.RunConfig{
		Machine:   machine,
		NProcs:    cfg.NProcs,
		WorkModel: cfg.Trace.WorkModel,
	}
	strategies := []core.Strategy{
		core.Static{P: partition.SFC{}},
		core.Static{P: partition.GMISPSP{}},
		core.Static{P: partition.PBDISP{}},
		core.Adaptive{ImbalanceGuard: 20},
	}
	var rows []Table4Row
	for _, s := range strategies {
		res, err := core.Run(tr, s, rc)
		if err != nil {
			return nil, fmt.Errorf("table4: %s: %w", s.Name(), err)
		}
		rows = append(rows, Table4Row{
			Partitioner:   s.Name(),
			Runtime:       res.TotalTime,
			MaxImbalance:  res.MaxImbalance,
			AMREfficiency: res.AMREfficiency,
		})
	}
	return rows, nil
}

// table4Machine models the Blue Horizon partition.
func table4Machine(nprocs int) *cluster.Cluster {
	return cluster.SP2(nprocs)
}

// ---------------------------------------------------------------------------
// Table 5 — Improvement due to system-sensitive adaptive partitioning.

// Table5Row is one line of Table 5.
type Table5Row struct {
	Procs               int
	DefaultTime         float64 // simulated seconds, equal distribution
	SystemSensitiveTime float64 // simulated seconds, capacity-weighted
	Improvement         float64 // percent
}

// Table5Config parameterizes the Table 5 replay.
type Table5Config struct {
	Trace      rm3d.Config
	ProcCounts []int
	// LoadSeed seeds the synthetic background load generator.
	LoadSeed int64
}

// DefaultTable5Config is the paper's setup: the RM3D kernel on a Linux
// workstation cluster of 4 to 32 nodes with synthetic background load.
func DefaultTable5Config() Table5Config {
	return Table5Config{Trace: rm3d.DefaultConfig(), ProcCounts: []int{4, 8, 16, 32}, LoadSeed: 2002}
}

// SmallTable5Config is a reduced setup for fast tests.
func SmallTable5Config() Table5Config {
	return Table5Config{Trace: rm3d.SmallConfig(), ProcCounts: []int{4, 16}, LoadSeed: 2002}
}

// Table5 compares the system-sensitive partitioner against the default
// equal-distribution scheme on a synthetically loaded cluster, per
// processor count.
func Table5(cfg Table5Config) ([]Table5Row, error) {
	tr, err := TraceFor(cfg.Trace)
	if err != nil {
		return nil, err
	}
	var rows []Table5Row
	for _, n := range cfg.ProcCounts {
		machine := cluster.LinuxCluster(n, cfg.LoadSeed)
		rc := core.RunConfig{Machine: machine, NProcs: n, WorkModel: cfg.Trace.WorkModel}
		def, err := core.Run(tr, core.Static{P: partition.EqualBlock{}}, rc)
		if err != nil {
			return nil, fmt.Errorf("table5: default/%d: %w", n, err)
		}
		ss, err := core.Run(tr, &core.SystemSensitive{}, rc)
		if err != nil {
			return nil, fmt.Errorf("table5: system-sensitive/%d: %w", n, err)
		}
		rows = append(rows, Table5Row{
			Procs:               n,
			DefaultTime:         def.TotalTime,
			SystemSensitiveTime: ss.TotalTime,
			Improvement:         100 * (def.TotalTime - ss.TotalTime) / def.TotalTime,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 2 — The octant approach (state-space occupancy of the RM3D run).

// Figure2Row describes one octant of the state space and how often the
// RM3D trace visits it.
type Figure2Row struct {
	Octant         string
	HigherDynamics bool
	CommDominated  bool
	Scattered      bool
	Visits         int
}

// Figure2 classifies every snapshot of the RM3D trace and reports octant
// occupancy: the live version of the paper's state-space diagram.
func Figure2() ([]Figure2Row, error) {
	tr, err := PaperTrace()
	if err != nil {
		return nil, err
	}
	chars, err := octant.CharacterizeTrace(tr, octant.DefaultThresholds(), 3)
	if err != nil {
		return nil, err
	}
	visits := map[octant.Octant]int{}
	for _, c := range chars {
		visits[c.Octant]++
	}
	var rows []Figure2Row
	for o := octant.I; o <= octant.VIII; o++ {
		rows = append(rows, Figure2Row{
			Octant:         o.String(),
			HigherDynamics: o.HigherDynamics(),
			CommDominated:  o.CommDominated(),
			Scattered:      o.Scattered(),
			Visits:         visits[o],
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 3 — RM3D profile views at sampled time-steps.

// Figure3 renders refinement profiles of the RM3D run at the given
// time-steps (defaults to Table3SampleSteps).
func Figure3(steps ...int) ([]string, error) {
	tr, err := PaperTrace()
	if err != nil {
		return nil, err
	}
	if len(steps) == 0 {
		steps = Table3SampleSteps
	}
	var out []string
	for _, ts := range steps {
		snap, ok := tr.At(ts)
		if !ok {
			return nil, fmt.Errorf("figure3: no snapshot %d", ts)
		}
		out = append(out, rm3d.Profile(snap))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 4 — System-sensitive adaptive partitioning pipeline.

// Figure4Result traces one pass through the Fig. 4 pipeline: monitored
// resources -> relative capacities -> weighted partitioning.
type Figure4Result struct {
	// CPUAvailable is the monitored per-node available CPU fraction.
	CPUAvailable []float64
	// Capacities are the computed relative capacities (sum to 1).
	Capacities []float64
	// WorkShares are the per-node fractions of grid work the
	// heterogeneous partitioner actually assigned.
	WorkShares []float64
}

// Figure4 runs the system-sensitive pipeline once on a loaded 8-node
// cluster and the first RM3D snapshot.
func Figure4() (*Figure4Result, error) {
	tr, err := PaperTrace()
	if err != nil {
		return nil, err
	}
	machine := cluster.LinuxCluster(8, 2002)
	s := &core.SystemSensitive{}
	ctx := &core.StepContext{
		Index:   0,
		Trace:   tr,
		Snap:    tr.Snapshots[0],
		WM:      rm3d.DefaultConfig().WorkModel(0),
		NProcs:  8,
		Machine: machine,
	}
	a, _, err := s.Assign(ctx)
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{}
	for i := 0; i < machine.NProcs(); i++ {
		res.CPUAvailable = append(res.CPUAvailable, 1-machine.Load.Load(i, 0))
	}
	work := a.Work()
	var total float64
	for _, w := range work {
		total += w
	}
	for _, w := range work {
		res.WorkShares = append(res.WorkShares, w/total)
	}
	res.Capacities = s.Capacities()
	return res, nil
}

package experiments

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/rm3d"
)

func TestCrossApplication(t *testing.T) {
	rows, err := CrossApplication(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Application] = true
		total := 0
		for _, v := range r.Occupancy {
			total += v
		}
		if total == 0 {
			t.Errorf("%s: empty occupancy", r.Application)
		}
		if r.AdaptiveTime <= 0 || r.BestStaticTime <= 0 {
			t.Errorf("%s: empty runtimes %+v", r.Application, r)
		}
		// Adaptive stays within a sane factor of the best static choice
		// (it cannot always win, but must never blow up).
		if r.AdaptiveTime > r.BestStaticTime*1.5 {
			t.Errorf("%s: adaptive %.2fs vs best static %.2fs", r.Application, r.AdaptiveTime, r.BestStaticTime)
		}
	}
	for _, want := range []string{"RM3D", "galaxy", "supernova"} {
		if !names[want] {
			t.Errorf("missing application %s (got %v)", want, names)
		}
	}
	// Octant trajectories are application-specific: occupancies differ.
	if rows[0].Occupancy == rows[1].Occupancy {
		t.Error("RM3D and galaxy occupancies identical")
	}
}

func TestPFRuntimePrediction(t *testing.T) {
	rows, err := PFRuntimePrediction(rm3d.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Predicted <= 0 || r.Simulated <= 0 {
			t.Errorf("procs %d: non-positive values %+v", r.Procs, r)
		}
		limit := 10.0 // percent, interpolation
		if r.Extrapolated {
			limit = 35 // extrapolation beyond the training set degrades
		}
		if r.PercentError > limit {
			t.Errorf("procs %d: prediction error %.1f%% above %.0f%% (extrapolated=%v)",
				r.Procs, r.PercentError, limit, r.Extrapolated)
		}
	}
	// Runtime falls with processor count in both prediction and simulation.
	if rows[0].Simulated <= rows[len(rows)-1].Simulated {
		t.Error("simulated runtime does not fall with processors")
	}
	if rows[0].Predicted <= rows[len(rows)-1].Predicted {
		t.Error("predicted runtime does not fall with processors")
	}
}

func TestExperimentErrorPaths(t *testing.T) {
	bad := rm3d.SmallConfig()
	bad.Ratio = 0
	if _, err := Table4(Table4Config{Trace: bad, NProcs: 8}); err == nil {
		t.Error("Table4 accepted invalid trace config")
	}
	if _, err := Table5(Table5Config{Trace: bad, ProcCounts: []int{4}}); err == nil {
		t.Error("Table5 accepted invalid trace config")
	}
	if _, err := AblationCurves(bad, 8, 4); err == nil {
		t.Error("AblationCurves accepted invalid trace config")
	}
	if _, err := PFRuntimePrediction(bad); err == nil {
		t.Error("PFRuntimePrediction accepted invalid trace config")
	}
}

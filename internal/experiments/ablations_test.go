package experiments

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/rm3d"
)

func TestAblationCurves(t *testing.T) {
	rows, err := AblationCurves(rm3d.SmallConfig(), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Curve != "hilbert" || rows[1].Curve != "morton" {
		t.Fatalf("rows = %+v", rows)
	}
	// Hilbert's locality must not lose on communication volume.
	if rows[0].CommVolume > rows[1].CommVolume*1.05 {
		t.Errorf("hilbert comm %.0f clearly worse than morton %.0f",
			rows[0].CommVolume, rows[1].CommVolume)
	}
	for _, r := range rows {
		if r.CommVolume <= 0 || r.CommMessages <= 0 {
			t.Errorf("%s: empty stats %+v", r.Curve, r)
		}
	}
}

func TestAblationSplitters(t *testing.T) {
	rows, err := AblationSplitters(rm3d.SmallConfig(), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	greedy, sp := rows[0], rows[1]
	if greedy.Splitter != "G-MISP" || sp.Splitter != "G-MISP+SP" {
		t.Fatalf("rows = %+v", rows)
	}
	// Optimal sequence partitioning dominates greedy at equal granularity.
	if sp.Imbalance > greedy.Imbalance {
		t.Errorf("SP mean imbalance %.2f%% worse than greedy %.2f%%", sp.Imbalance, greedy.Imbalance)
	}
	if sp.MaxImbalance > greedy.MaxImbalance {
		t.Errorf("SP max imbalance %.2f%% worse than greedy %.2f%%", sp.MaxImbalance, greedy.MaxImbalance)
	}
}

func TestAblationForecasters(t *testing.T) {
	rows, err := AblationForecasters(8, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	mse := map[string]float64{}
	for _, r := range rows {
		if r.MSE < 0 {
			t.Errorf("%s: negative MSE", r.Forecaster)
		}
		mse[r.Forecaster] = r.MSE
	}
	// The meta-forecaster must be competitive: no worse than 1.5x the best
	// individual forecaster (it pays a small exploration cost).
	best := -1.0
	for name, v := range mse {
		if name == "nws-meta" {
			continue
		}
		if best < 0 || v < best {
			best = v
		}
	}
	if mse["nws-meta"] > best*1.5 {
		t.Errorf("meta MSE %g not competitive with best individual %g", mse["nws-meta"], best)
	}
	if _, err := AblationForecasters(0, 100, 1); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestAblationProcSweep(t *testing.T) {
	rows, err := AblationProcSweep(rm3d.SmallConfig(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AdaptiveTime <= 0 || r.BestStaticTime <= 0 || r.WorstStaticTime < r.BestStaticTime {
			t.Errorf("bad row %+v", r)
		}
		// Adaptive never loses to the worst static choice.
		if r.AdaptiveVsWorstStatic <= 0 {
			t.Errorf("procs %d: adaptive not better than worst static (%+v)", r.Procs, r)
		}
	}
}

func TestAblationCapacityWeights(t *testing.T) {
	rows, err := AblationCapacityWeights(rm3d.SmallConfig(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Pure-CPU weighting must beat capacity-blind weighting (CPU weight 0)
	// on a CPU-load-dominated cluster.
	if rows[4].Improvement <= rows[0].Improvement {
		t.Errorf("cpu-weight 1.0 improvement %.1f%% not above cpu-weight 0 improvement %.1f%%",
			rows[4].Improvement, rows[0].Improvement)
	}
}

func TestAblationManagement(t *testing.T) {
	rows, err := AblationManagement(rm3d.SmallConfig(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ManagementAblationRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
		if r.Runtime <= 0 {
			t.Errorf("%s: runtime %g", r.Strategy, r.Runtime)
		}
	}
	// Capacity-aware strategies beat the default scheme.
	def := byName["EqualBlock"].Runtime
	for _, name := range []string{"system-sensitive", "proactive"} {
		if byName[name].Runtime >= def {
			t.Errorf("%s (%.2fs) not faster than default (%.2fs)", name, byName[name].Runtime, def)
		}
	}
	// The agent-managed loop repartitions strictly less often than every
	// regrid.
	am := byName["agent-managed"]
	if am.Repartitions <= 0 || am.Repartitions >= len(rows)*100 {
		// sanity only; exact count asserted in core tests
		t.Logf("agent-managed repartitions: %d", am.Repartitions)
	}
}

func TestAblationFailures(t *testing.T) {
	rows, err := AblationFailures(rm3d.SmallConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Scenario != "healthy" {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	// Degradation is graceful and monotone: more failures, more time, but
	// every run completes.
	for i := 1; i < len(rows); i++ {
		if rows[i].Runtime <= rows[i-1].Runtime {
			t.Errorf("scenario %q (%.2fs) not slower than %q (%.2fs)",
				rows[i].Scenario, rows[i].Runtime, rows[i-1].Scenario, rows[i-1].Runtime)
		}
		if rows[i].Detected == 0 {
			t.Errorf("scenario %q never detected failures", rows[i].Scenario)
		}
	}
	// Losing 2 of 8 nodes must cost less than 3x the healthy runtime.
	if rows[2].Runtime > rows[0].Runtime*3 {
		t.Errorf("two failures blew up runtime: %.2fs vs %.2fs", rows[2].Runtime, rows[0].Runtime)
	}
}

package experiments

import "testing"

func TestScenarioCoverageConforms(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	res, err := ScenarioCoverage(1000, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != n || len(res.Rows) != 8 {
		t.Fatalf("result shape: %d scenarios, %d rows", res.Scenarios, len(res.Rows))
	}
	total := 0
	for _, row := range res.Rows {
		total += row.Snapshots
		if row.Snapshots > 0 && row.Conformance != 1.0 {
			t.Errorf("octant %s: conformance %.3f (selections %s)", row.Octant, row.Conformance, row.TopSelections())
		}
		if row.Recommended == "" {
			t.Errorf("octant %s: no recommendation", row.Octant)
		}
	}
	if total != res.Snapshots || total == 0 {
		t.Fatalf("snapshot accounting: rows sum %d, result %d", total, res.Snapshots)
	}
}

func TestScenarioReplayReportsPhases(t *testing.T) {
	res, err := ScenarioReplay("seed=3;shock:6,block:6", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 || res.Snapshots != 12 {
		t.Fatalf("shape: %d phases, %d snapshots", len(res.Phases), res.Snapshots)
	}
	if res.Phases[0].Expected != "V" || res.Phases[0].Observed != "V" {
		t.Errorf("phase 0: expected %s observed %s, want V/V", res.Phases[0].Expected, res.Phases[0].Observed)
	}
	if res.Phases[1].Expected != "III" || res.Phases[1].Observed != "III" {
		t.Errorf("phase 1: expected %s observed %s, want III/III", res.Phases[1].Expected, res.Phases[1].Observed)
	}
	if res.Switches < 1 {
		t.Errorf("switches %d, want >= 1", res.Switches)
	}
	if _, err := ScenarioReplay("not-a-driver:4", 8); err == nil {
		t.Error("bad spec: expected error")
	}
}

package experiments

import (
	"strings"
	"testing"
)

func TestTable1ErrorsInPaperBand(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	wantSizes := []float64{200, 400, 600, 800, 1000}
	for i, r := range rows {
		if r.DataSize != wantSizes[i] {
			t.Errorf("row %d data size %g, want %g", i, r.DataSize, wantSizes[i])
		}
		// The paper reports errors roughly between 0.5% and 5%; we require
		// the same ceiling (with slack) and sane positive delays.
		if r.PercentError > 6 {
			t.Errorf("row %d error %.2f%% above band", i, r.PercentError)
		}
		if r.Predicted <= 0 || r.Measured <= 0 {
			t.Errorf("row %d non-positive delays: %+v", i, r)
		}
	}
	// Delay grows with data size, as in the paper's measured column.
	if rows[4].Measured <= rows[0].Measured {
		t.Error("measured delay does not grow with data size")
	}
	// Magnitudes match the paper's: ~8e-4 s at 200 B, ~2e-3 s at 1000 B.
	if rows[0].Measured < 5e-4 || rows[0].Measured > 1.2e-3 {
		t.Errorf("200 B delay %g outside paper magnitude", rows[0].Measured)
	}
	if rows[4].Measured < 1.6e-3 || rows[4].Measured > 3e-3 {
		t.Errorf("1000 B delay %g outside paper magnitude", rows[4].Measured)
	}
}

func TestTable2MatchesPaperExactly(t *testing.T) {
	want := map[string][]string{
		"I":    {"pBD-ISP", "G-MISP+SP"},
		"II":   {"pBD-ISP"},
		"III":  {"G-MISP+SP", "SP-ISP"},
		"IV":   {"G-MISP+SP", "SP-ISP", "ISP"},
		"V":    {"pBD-ISP"},
		"VI":   {"pBD-ISP"},
		"VII":  {"G-MISP+SP"},
		"VIII": {"G-MISP+SP", "ISP"},
	}
	rows := Table2()
	if len(rows) != 8 {
		t.Fatalf("Table 2 has %d rows", len(rows))
	}
	for _, row := range rows {
		w := want[row.Octant]
		if strings.Join(row.Schemes, ",") != strings.Join(w, ",") {
			t.Errorf("octant %s: %v, paper lists %v", row.Octant, row.Schemes, w)
		}
	}
}

func TestTable3MatchesPaperExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale trace")
	}
	want := map[int][2]string{
		0:   {"IV", "G-MISP+SP"},
		5:   {"VII", "G-MISP+SP"},
		25:  {"I", "pBD-ISP"},
		106: {"VI", "pBD-ISP"},
		137: {"VIII", "G-MISP+SP"},
		162: {"II", "pBD-ISP"},
		174: {"V", "pBD-ISP"},
		201: {"III", "G-MISP+SP"},
	}
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("Table 3 has %d rows", len(rows))
	}
	for _, r := range rows {
		w := want[r.TimeStep]
		if r.Octant != w[0] || r.Partitioner != w[1] {
			t.Errorf("time-step %d: (%s, %s), paper reports (%s, %s)",
				r.TimeStep, r.Octant, r.Partitioner, w[0], w[1])
		}
	}
}

func TestTable4SmallShape(t *testing.T) {
	// The fast configuration cannot reproduce the 64-processor numbers but
	// must preserve the basic shape: valid rows, plausible imbalances, and
	// uniformly high AMR efficiency.
	rows, err := Table4(SmallTable4Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table 4 has %d rows", len(rows))
	}
	names := []string{"SFC", "G-MISP+SP", "pBD-ISP", "adaptive"}
	for i, r := range rows {
		if r.Partitioner != names[i] {
			t.Errorf("row %d partitioner %s, want %s", i, r.Partitioner, names[i])
		}
		if r.Runtime <= 0 {
			t.Errorf("%s runtime %g", r.Partitioner, r.Runtime)
		}
		if r.AMREfficiency < 80 {
			t.Errorf("%s AMR efficiency %.1f%%", r.Partitioner, r.AMREfficiency)
		}
		if r.MaxImbalance < 0 || r.MaxImbalance > 200 {
			t.Errorf("%s imbalance %.1f%%", r.Partitioner, r.MaxImbalance)
		}
	}
	// AMR efficiency is a property of the application, not the partitioner.
	for _, r := range rows[1:] {
		if diff := r.AMREfficiency - rows[0].AMREfficiency; diff > 0.01 || diff < -0.01 {
			t.Errorf("AMR efficiency differs across partitioners: %v", rows)
		}
	}
	// G-MISP+SP balances better than pBD-ISP at any scale.
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Partitioner] = r
	}
	if byName["G-MISP+SP"].MaxImbalance > byName["pBD-ISP"].MaxImbalance {
		t.Errorf("G-MISP+SP imbalance %.1f%% above pBD-ISP %.1f%%",
			byName["G-MISP+SP"].MaxImbalance, byName["pBD-ISP"].MaxImbalance)
	}
}

// TestTable4PaperShape checks the full paper-scale orderings; it is the
// slowest test in the repository (~30 s) and is skipped in -short runs.
func TestTable4PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale replay")
	}
	rows, err := Table4(DefaultTable4Config())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Partitioner] = r
	}
	a, g, p, s := byName["adaptive"], byName["G-MISP+SP"], byName["pBD-ISP"], byName["SFC"]
	// Runtime ordering of the paper's Table 4: adaptive fastest, then
	// G-MISP+SP, then pBD-ISP, SFC slowest.
	if !(a.Runtime < g.Runtime && g.Runtime < p.Runtime && p.Runtime < s.Runtime) {
		t.Errorf("runtime ordering wrong: adaptive %.1f, G-MISP+SP %.1f, pBD-ISP %.1f, SFC %.1f",
			a.Runtime, g.Runtime, p.Runtime, s.Runtime)
	}
	// Dynamically switching partitioners reduces runtime over the slowest.
	if imp := 100 * (s.Runtime - a.Runtime) / s.Runtime; imp < 5 {
		t.Errorf("adaptive improvement over slowest %.1f%%, want clearly positive", imp)
	}
	// Imbalance ordering: G-MISP+SP < SFC < pBD-ISP; adaptive below SFC.
	if !(g.MaxImbalance < s.MaxImbalance && s.MaxImbalance < p.MaxImbalance) {
		t.Errorf("imbalance ordering wrong: G %.1f, SFC %.1f, pBD %.1f",
			g.MaxImbalance, s.MaxImbalance, p.MaxImbalance)
	}
	if a.MaxImbalance >= p.MaxImbalance {
		t.Errorf("adaptive imbalance %.1f%% not below pBD-ISP %.1f%%", a.MaxImbalance, p.MaxImbalance)
	}
	// AMR efficiency high for all, as in the paper (~98.8%).
	for _, r := range rows {
		if r.AMREfficiency < 85 {
			t.Errorf("%s AMR efficiency %.1f%%", r.Partitioner, r.AMREfficiency)
		}
	}
}

func TestTable5SmallImprovementPositive(t *testing.T) {
	rows, err := Table5(SmallTable5Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Improvement <= 0 {
			t.Errorf("procs %d: improvement %.1f%% not positive", r.Procs, r.Improvement)
		}
		if r.SystemSensitiveTime >= r.DefaultTime {
			t.Errorf("procs %d: system-sensitive not faster", r.Procs)
		}
	}
}

// TestTable5PaperShape verifies the full Table 5 shape: improvements in the
// paper's band, growing toward larger clusters (~18% at 32 nodes).
func TestTable5PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale replay")
	}
	rows, err := Table5(DefaultTable5Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Improvement < 3 || r.Improvement > 40 {
			t.Errorf("procs %d: improvement %.1f%% outside plausible band", r.Procs, r.Improvement)
		}
	}
	// Improvement at 32 nodes is the largest and lands near the paper's ~18%.
	last := rows[len(rows)-1]
	if last.Procs != 32 {
		t.Fatalf("last row procs = %d", last.Procs)
	}
	for _, r := range rows[:len(rows)-1] {
		if r.Improvement > last.Improvement {
			t.Errorf("improvement at %d procs (%.1f%%) exceeds 32 procs (%.1f%%)",
				r.Procs, r.Improvement, last.Improvement)
		}
	}
	if last.Improvement < 10 || last.Improvement > 30 {
		t.Errorf("32-node improvement %.1f%%, paper reports ~18%%", last.Improvement)
	}
}

func TestFigure2Occupancy(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale trace")
	}
	rows, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	total := 0
	for _, r := range rows {
		if r.Visits == 0 {
			t.Errorf("octant %s never visited", r.Octant)
		}
		total += r.Visits
	}
	if total != 202 {
		t.Errorf("total visits %d, want 202 snapshots", total)
	}
}

func TestFigure3Profiles(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale trace")
	}
	profiles, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != len(Table3SampleSteps) {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for i, p := range profiles {
		if !strings.Contains(p, "+") {
			t.Errorf("profile %d shows no refinement:\n%s", i, p)
		}
	}
	if _, err := Figure3(99999); err == nil {
		t.Error("out-of-range step accepted")
	}
}

func TestFigure4Pipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale trace")
	}
	res, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capacities) != 8 || len(res.WorkShares) != 8 || len(res.CPUAvailable) != 8 {
		t.Fatalf("bad shapes: %+v", res)
	}
	var capSum, shareSum float64
	for i := range res.Capacities {
		capSum += res.Capacities[i]
		shareSum += res.WorkShares[i]
	}
	if capSum < 0.999 || capSum > 1.001 {
		t.Errorf("capacities sum to %g", capSum)
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("work shares sum to %g", shareSum)
	}
	// The most loaded node must receive less work than the least loaded.
	loIdx, hiIdx := 0, 0
	for i, c := range res.CPUAvailable {
		if c < res.CPUAvailable[loIdx] {
			loIdx = i
		}
		if c > res.CPUAvailable[hiIdx] {
			hiIdx = i
		}
	}
	if res.WorkShares[loIdx] >= res.WorkShares[hiIdx] {
		t.Errorf("loaded node %d share %.3f not below idle node %d share %.3f",
			loIdx, res.WorkShares[loIdx], hiIdx, res.WorkShares[hiIdx])
	}
}

func TestTraceCaching(t *testing.T) {
	a, err := SmallTrace()
	if err != nil {
		t.Fatal(err)
	}
	b, err := SmallTrace()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("trace cache returned distinct objects")
	}
}

package experiments

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

// PartitionBenchRow compares from-scratch partitioning against the
// delta-regrid pipeline (warm PartitionPlan) for one ISP partitioner on a
// locality-dominated regrid delta.
type PartitionBenchRow struct {
	// Partitioner is the paper name (SFC, G-MISP, ...).
	Partitioner string
	// ScratchSeconds is the best-of-repeats wall time of one from-scratch
	// Partition call on the delta cycle.
	ScratchSeconds float64
	// IncrementalSeconds is the best-of-repeats wall time of one
	// PartitionIncremental call through a warm plan on the same delta.
	IncrementalSeconds float64
	// Speedup is ScratchSeconds / IncrementalSeconds.
	Speedup float64
	// ReusePct is the percentage of units served from the plan cache on
	// the delta cycle.
	ReusePct float64
}

// partitionDeltaPair is the paper-scale regrid delta: the kernelHierarchy
// workload plus a small level-2 tracker box that drifts between cycles
// while everything else stays put — the locality-dominated regrid the
// paper's runtime sees when a front moves a little between regrids.
func partitionDeltaPair() (h1, h2 *samr.Hierarchy, err error) {
	build := func(trackerX int) (*samr.Hierarchy, error) {
		h, err := kernelHierarchy()
		if err != nil {
			return nil, err
		}
		l2 := append([]samr.Box(nil), h.Levels[2]...)
		l2 = append(l2, samr.Box{
			Lo: samr.Point{trackerX, 96, 96},
			Hi: samr.Point{trackerX + 8, 120, 120},
		})
		if err := h.SetLevel(2, l2); err != nil {
			return nil, err
		}
		if err := h.Validate(); err != nil {
			return nil, err
		}
		return h, nil
	}
	if h1, err = build(132); err != nil {
		return nil, nil, err
	}
	if h2, err = build(136); err != nil {
		return nil, nil, err
	}
	return h1, h2, nil
}

// PartitionBench measures every ISP partitioner from scratch and through a
// warm PartitionPlan on the same locality-dominated delta at 64 processors.
// Rows feed `pragma-bench -partition`, the EXPERIMENTS.md table, and the
// -json report; the incremental output is asserted bit-identical to the
// scratch one before any timing is trusted.
func PartitionBench(repeats int) ([]PartitionBenchRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	h1, h2, err := partitionDeltaPair()
	if err != nil {
		return nil, err
	}
	wm := samr.UniformWorkModel{}
	const nprocs = 64

	var rows []PartitionBenchRow
	for _, p := range partition.All() {
		ip, ok := p.(partition.IncrementalPartitioner)
		if !ok {
			return nil, fmt.Errorf("partitioner %s is not incremental", p.Name())
		}
		// Warm the plan on h1, then time the h2<->h1 delta cycles.
		plan := partition.NewPartitionPlan()
		if _, err := ip.PartitionIncremental(h1, wm, nprocs, plan); err != nil {
			return nil, err
		}
		want, err := p.Partition(h2, wm, nprocs)
		if err != nil {
			return nil, err
		}
		got, err := ip.PartitionIncremental(h2, wm, nprocs, plan)
		if err != nil {
			return nil, err
		}
		if len(got.Units) != len(want.Units) {
			return nil, fmt.Errorf("%s: incremental emitted %d units, scratch %d", p.Name(), len(got.Units), len(want.Units))
		}
		for i := range got.Units {
			if got.Units[i] != want.Units[i] || got.Owner[i] != want.Owner[i] {
				return nil, fmt.Errorf("%s: incremental diverges from scratch at unit %d", p.Name(), i)
			}
		}
		row := PartitionBenchRow{Partitioner: p.Name(), ReusePct: 100 * plan.LastReuseRatio()}
		hs := [2]*samr.Hierarchy{h1, h2}
		i := 0
		row.ScratchSeconds = best(repeats, func() {
			if _, err := p.Partition(hs[i%2], wm, nprocs); err != nil {
				panic(err)
			}
			i++
		})
		j := 0
		row.IncrementalSeconds = best(repeats, func() {
			if _, err := ip.PartitionIncremental(hs[j%2], wm, nprocs, plan); err != nil {
				panic(err)
			}
			j++
		})
		if row.IncrementalSeconds <= 0 {
			return nil, fmt.Errorf("partitioner %s: degenerate timing", p.Name())
		}
		row.Speedup = row.ScratchSeconds / row.IncrementalSeconds
		rows = append(rows, row)
	}
	return rows, nil
}

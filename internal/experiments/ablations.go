package experiments

import (
	"fmt"
	"math/rand"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/monitor"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/sfc"
)

// This file holds the ablation studies of DESIGN.md §6: experiments probing
// the design choices behind the headline results rather than reproducing a
// specific paper table.

// CurveAblationRow compares space-filling-curve orderings inside an ISP
// partitioner.
type CurveAblationRow struct {
	Curve        string
	CommVolume   float64 // mean per regrid
	CommMessages float64 // mean per regrid
	Imbalance    float64 // mean per regrid
}

// AblationCurves compares Hilbert versus Morton ordering in the SP-ISP
// partitioner over the RM3D trace: Hilbert's locality should never lose on
// communication volume.
func AblationCurves(cfg rm3d.Config, nprocs int, sampleEvery int) ([]CurveAblationRow, error) {
	tr, err := TraceFor(cfg)
	if err != nil {
		return nil, err
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	dom := cfg.Domain()
	finest := dom
	for i := 1; i < cfg.MaxDepth; i++ {
		finest = finest.Refine(cfg.Ratio)
	}
	bits := sfc.BitsFor(finest.Dx(0), finest.Dx(1), finest.Dx(2))
	curves := []struct {
		name  string
		curve sfc.Curve
	}{
		{"hilbert", sfc.MustHilbert(bits)},
		{"morton", sfc.MustMorton(bits)},
	}
	var rows []CurveAblationRow
	for _, c := range curves {
		p := partition.SPISP{Curve: c.curve}
		row := CurveAblationRow{Curve: c.name}
		n := 0
		for idx := 0; idx < len(tr.Snapshots); idx += sampleEvery {
			snap := tr.Snapshots[idx]
			a, err := p.Partition(snap.H, cfg.WorkModel(idx), nprocs)
			if err != nil {
				return nil, err
			}
			st := partition.BuildCommPlan(snap.H, a).Stats
			row.CommVolume += st.Volume
			row.CommMessages += st.Messages
			row.Imbalance += a.Imbalance()
			n++
		}
		row.CommVolume /= float64(n)
		row.CommMessages /= float64(n)
		row.Imbalance /= float64(n)
		rows = append(rows, row)
	}
	return rows, nil
}

// SplitAblationRow compares sequence-splitting algorithms at identical
// granularity.
type SplitAblationRow struct {
	Splitter     string
	Imbalance    float64 // mean per regrid
	MaxImbalance float64
}

// AblationSplitters holds granularity fixed (the G-MISP decomposition) and
// varies only the 1-D splitting algorithm: greedy (G-MISP), optimal
// sequence partitioning (G-MISP+SP). The SP variant must dominate.
func AblationSplitters(cfg rm3d.Config, nprocs int, sampleEvery int) ([]SplitAblationRow, error) {
	tr, err := TraceFor(cfg)
	if err != nil {
		return nil, err
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	partitioners := []partition.Partitioner{partition.GMISP{}, partition.GMISPSP{}}
	var rows []SplitAblationRow
	for _, p := range partitioners {
		row := SplitAblationRow{Splitter: p.Name()}
		n := 0
		for idx := 0; idx < len(tr.Snapshots); idx += sampleEvery {
			snap := tr.Snapshots[idx]
			a, err := p.Partition(snap.H, cfg.WorkModel(idx), nprocs)
			if err != nil {
				return nil, err
			}
			imb := a.Imbalance()
			row.Imbalance += imb
			if imb > row.MaxImbalance {
				row.MaxImbalance = imb
			}
			n++
		}
		row.Imbalance /= float64(n)
		rows = append(rows, row)
	}
	return rows, nil
}

// ForecastAblationRow reports a forecaster's mean squared one-step error on
// a synthetic CPU-availability series.
type ForecastAblationRow struct {
	Forecaster string
	MSE        float64
}

// AblationForecasters evaluates each NWS-style forecaster and the
// meta-forecaster on CPU-availability series sampled from the synthetic
// load generator; the meta-forecaster should track the best individual.
func AblationForecasters(nodes, samples int, seed int64) ([]ForecastAblationRow, error) {
	if nodes < 1 || samples < 10 {
		return nil, fmt.Errorf("experiments: need nodes >= 1 and samples >= 10")
	}
	load := cluster.NewSyntheticLoad(nodes, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	series := make([][]float64, nodes)
	for i := range series {
		series[i] = make([]float64, samples)
		for s := 0; s < samples; s++ {
			// Observed availability with measurement noise.
			series[i][s] = 1 - load.Load(i, float64(s)*5) + 0.02*rng.NormFloat64()
		}
	}
	builders := []struct {
		name  string
		build func() monitor.Forecaster
	}{
		{"last-value", func() monitor.Forecaster { return &monitor.LastValue{} }},
		{"running-mean", func() monitor.Forecaster { return &monitor.RunningMean{} }},
		{"sliding-mean-8", func() monitor.Forecaster { return monitor.NewSlidingMean(8) }},
		{"sliding-median-8", func() monitor.Forecaster { return monitor.NewSlidingMedian(8) }},
		{"exp-smoothing-0.30", func() monitor.Forecaster { return monitor.NewExpSmoothing(0.3) }},
		{"ar1-32", func() monitor.Forecaster { return monitor.NewAR1(32) }},
		{"nws-meta", func() monitor.Forecaster { return monitor.NewMeta() }},
	}
	var rows []ForecastAblationRow
	for _, b := range builders {
		var sum float64
		for i := range series {
			sum += monitor.MSEOf(b.build(), series[i])
		}
		rows = append(rows, ForecastAblationRow{Forecaster: b.name, MSE: sum / float64(nodes)})
	}
	return rows, nil
}

// ProcSweepRow extends Table 4 across processor counts.
type ProcSweepRow struct {
	Procs                 int
	AdaptiveTime          float64
	BestStaticTime        float64
	BestStatic            string
	WorstStaticTime       float64
	WorstStatic           string
	AdaptiveVsWorstStatic float64 // percent improvement
}

// AblationProcSweep reruns the Table 4 comparison at several processor
// counts — the headline experiment is one point of this curve.
func AblationProcSweep(cfg rm3d.Config, procCounts []int) ([]ProcSweepRow, error) {
	tr, err := TraceFor(cfg)
	if err != nil {
		return nil, err
	}
	var rows []ProcSweepRow
	for _, n := range procCounts {
		rc := core.RunConfig{Machine: cluster.SP2(n), NProcs: n, WorkModel: cfg.WorkModel}
		adaptive, err := core.Run(tr, core.Adaptive{ImbalanceGuard: 20}, rc)
		if err != nil {
			return nil, err
		}
		row := ProcSweepRow{Procs: n, AdaptiveTime: adaptive.TotalTime}
		for _, p := range []partition.Partitioner{partition.SFC{}, partition.GMISPSP{}, partition.PBDISP{}} {
			res, err := core.Run(tr, core.Static{P: p}, rc)
			if err != nil {
				return nil, err
			}
			if row.BestStatic == "" || res.TotalTime < row.BestStaticTime {
				row.BestStatic, row.BestStaticTime = p.Name(), res.TotalTime
			}
			if row.WorstStatic == "" || res.TotalTime > row.WorstStaticTime {
				row.WorstStatic, row.WorstStaticTime = p.Name(), res.TotalTime
			}
		}
		row.AdaptiveVsWorstStatic = 100 * (row.WorstStaticTime - row.AdaptiveTime) / row.WorstStaticTime
		rows = append(rows, row)
	}
	return rows, nil
}

// WeightAblationRow reports Table 5 improvement under one capacity
// weighting.
type WeightAblationRow struct {
	Weights     monitor.Weights
	Improvement float64 // percent at the given cluster size
}

// AblationCapacityWeights sweeps the CPU weight of the capacity formula on
// the Table 5 scenario: heavier CPU weighting should help on a
// CPU-load-dominated cluster, saturating near pure-CPU weighting.
func AblationCapacityWeights(cfg rm3d.Config, nprocs int, loadSeed int64) ([]WeightAblationRow, error) {
	tr, err := TraceFor(cfg)
	if err != nil {
		return nil, err
	}
	machine := cluster.LinuxCluster(nprocs, loadSeed)
	rc := core.RunConfig{Machine: machine, NProcs: nprocs, WorkModel: cfg.WorkModel}
	def, err := core.Run(tr, core.Static{P: partition.EqualBlock{}}, rc)
	if err != nil {
		return nil, err
	}
	var rows []WeightAblationRow
	for _, cpuW := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		rest := (1 - cpuW) / 2
		w := monitor.Weights{CPU: cpuW, Memory: rest, Bandwidth: rest}
		res, err := core.Run(tr, &core.SystemSensitive{Weights: w}, rc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WeightAblationRow{
			Weights:     w,
			Improvement: 100 * (def.TotalTime - res.TotalTime) / def.TotalTime,
		})
	}
	return rows, nil
}

// FailureAblationRow reports a failure-injection scenario.
type FailureAblationRow struct {
	Scenario string
	Runtime  float64
	// Detected counts regrids at which dead nodes were observed.
	Detected int
}

// AblationFailures injects fail-stop node failures mid-run and measures
// the fault-tolerant wrapper's graceful degradation — the "respond to
// system failures" goal of §1. Scenarios: healthy, one failure, two
// failures (all on the same machine description).
func AblationFailures(cfg rm3d.Config, nprocs int) ([]FailureAblationRow, error) {
	tr, err := TraceFor(cfg)
	if err != nil {
		return nil, err
	}
	healthyMachine := cluster.SP2(nprocs)
	rc := core.RunConfig{Machine: healthyMachine, NProcs: nprocs, WorkModel: cfg.WorkModel}
	base := &core.FailureAware{Inner: core.Static{P: partition.GMISPSP{}}}
	healthy, err := core.Run(tr, base, rc)
	if err != nil {
		return nil, err
	}
	rows := []FailureAblationRow{{Scenario: "healthy", Runtime: healthy.TotalTime}}

	for _, failures := range []int{1, 2} {
		machine := cluster.SP2(nprocs)
		for k := 0; k < failures; k++ {
			machine.Fail(1+2*k, healthy.TotalTime*float64(k+1)/4)
		}
		ft := &core.FailureAware{Inner: core.Static{P: partition.GMISPSP{}}}
		res, err := core.Run(tr, ft, core.RunConfig{Machine: machine, NProcs: nprocs, WorkModel: cfg.WorkModel})
		if err != nil {
			return nil, err
		}
		rows = append(rows, FailureAblationRow{
			Scenario: fmt.Sprintf("%d node(s) fail mid-run", failures),
			Runtime:  res.TotalTime,
			Detected: ft.FailuresSeen,
		})
	}
	return rows, nil
}

// ManagementAblationRow compares runtime-management styles on a loaded
// cluster.
type ManagementAblationRow struct {
	Strategy     string
	Runtime      float64
	Repartitions int // regrids that actually repartitioned
}

// AblationManagement compares the default scheme, reactive
// system-sensitive partitioning, the proactive (predictive) variant, and
// the event-driven agent-managed loop on the same loaded cluster.
func AblationManagement(cfg rm3d.Config, nprocs int, loadSeed int64) ([]ManagementAblationRow, error) {
	tr, err := TraceFor(cfg)
	if err != nil {
		return nil, err
	}
	machine := cluster.LinuxCluster(nprocs, loadSeed)
	rc := core.RunConfig{Machine: machine, NProcs: nprocs, WorkModel: cfg.WorkModel}

	var rows []ManagementAblationRow
	add := func(s core.Strategy, repartitions func() int) error {
		res, err := core.Run(tr, s, rc)
		if err != nil {
			return err
		}
		row := ManagementAblationRow{Strategy: res.Strategy, Runtime: res.TotalTime, Repartitions: len(tr.Snapshots)}
		if repartitions != nil {
			row.Repartitions = repartitions()
		}
		rows = append(rows, row)
		return nil
	}
	if err := add(core.Static{P: partition.EqualBlock{}}, nil); err != nil {
		return nil, err
	}
	if err := add(&core.SystemSensitive{}, nil); err != nil {
		return nil, err
	}
	if err := add(&core.Proactive{}, nil); err != nil {
		return nil, err
	}
	am, err := core.NewAgentManaged(nprocs, 25)
	if err != nil {
		return nil, err
	}
	if err := add(am, func() int { return am.Repartitions }); err != nil {
		return nil, err
	}
	return rows, nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment has one entry point returning typed rows;
// cmd/pragma-bench prints them in the paper's format and the repository's
// top-level benchmarks time them. EXPERIMENTS.md records paper-reported
// versus regenerated values.
package experiments

import (
	"fmt"
	"sync"

	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/samr"
)

// traceCache memoizes generated adaptation traces per configuration seed so
// repeated experiments do not regenerate the 200+ snapshot trace.
var traceCache = struct {
	sync.Mutex
	m map[string]*samr.Trace
}{m: map[string]*samr.Trace{}}

// TraceFor returns the (cached) adaptation trace for a configuration.
func TraceFor(cfg rm3d.Config) (*samr.Trace, error) {
	key := fmt.Sprintf("%+v", cfg)
	traceCache.Lock()
	defer traceCache.Unlock()
	if tr, ok := traceCache.m[key]; ok {
		return tr, nil
	}
	tr, err := rm3d.GenerateTrace(cfg)
	if err != nil {
		return nil, err
	}
	traceCache.m[key] = tr
	return tr, nil
}

// PaperTrace returns the paper-scale RM3D trace (128x32x32 base, 3 levels,
// regrid every 4 steps, 202 snapshots).
func PaperTrace() (*samr.Trace, error) { return TraceFor(rm3d.DefaultConfig()) }

// SmallTrace returns the reduced trace used by fast tests.
func SmallTrace() (*samr.Trace, error) { return TraceFor(rm3d.SmallConfig()) }

package experiments

import (
	"fmt"
	"sort"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/policy"
	"github.com/pragma-grid/pragma/internal/scenario"
)

// This file backs pragma-bench's scenario modes: the octant-coverage table
// of EXPERIMENTS.md (replaying a seeded scenario corpus and aggregating
// which octants were visited and what the meta-partitioner selected) and
// single-scenario replays for ad-hoc workloads.

// CoverageRow aggregates one octant across the corpus replay.
type CoverageRow struct {
	// Octant is the octant name ("I".."VIII").
	Octant string
	// Snapshots is how many corpus snapshots classified into the octant.
	Snapshots int
	// Selected counts the meta-partitioner's selections at those
	// snapshots, by partitioner name.
	Selected map[string]int
	// Recommended is Table 2's first recommendation for the octant.
	Recommended string
	// Conformance is the fraction of snapshots where the selection
	// matched Recommended.
	Conformance float64
}

// CoverageResult is the corpus-wide octant-coverage study.
type CoverageResult struct {
	Scenarios int
	Snapshots int
	BaseSeed  int64
	Rows      []CoverageRow // all eight octants, in octant order
}

// ScenarioCoverage replays a corpus of n seed-derived scenarios (seeds
// base..base+n-1) under the strict Table-2 meta-partitioner on an 8-node
// machine and aggregates octant occupancy, partitioner selections, and
// Table-2 conformance per octant — the data behind the EXPERIMENTS.md
// octant-coverage table.
func ScenarioCoverage(base int64, n int) (*CoverageResult, error) {
	recs := policy.Table2Recommendations()
	th := octant.DefaultThresholds()
	meta := core.NewMetaPartitioner()
	byOctant := map[octant.Octant]*CoverageRow{}
	for o := octant.I; o <= octant.VIII; o++ {
		byOctant[o] = &CoverageRow{
			Octant:      o.String(),
			Selected:    map[string]int{},
			Recommended: recs[o.String()][0],
		}
	}
	res := &CoverageResult{Scenarios: n, BaseSeed: base}
	for _, spec := range scenario.Corpus(base, n) {
		tr, err := spec.Generate()
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
		rr, err := core.Run(tr, core.Adaptive{}, core.RunConfig{
			Machine:   cluster.SP2(8),
			WorkModel: spec.WorkModel,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
		for _, stat := range rr.Snapshots {
			state, err := octant.StateAt(tr, stat.Index, meta.Window)
			if err != nil {
				return nil, err
			}
			row := byOctant[octant.Classify(state, th)]
			row.Snapshots++
			row.Selected[stat.Partitioner]++
			res.Snapshots++
		}
	}
	for o := octant.I; o <= octant.VIII; o++ {
		row := byOctant[o]
		if row.Snapshots > 0 {
			row.Conformance = float64(row.Selected[row.Recommended]) / float64(row.Snapshots)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// TopSelections renders the row's selection counts as "name:count" pairs,
// most frequent first — stable for report output.
func (r CoverageRow) TopSelections() string {
	type kv struct {
		name  string
		count int
	}
	var kvs []kv
	for name, c := range r.Selected {
		kvs = append(kvs, kv{name, c})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].count != kvs[j].count {
			return kvs[i].count > kvs[j].count
		}
		return kvs[i].name < kvs[j].name
	})
	s := ""
	for i, e := range kvs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", e.name, e.count)
	}
	if s == "" {
		s = "-"
	}
	return s
}

// ScenarioPhaseReport is one phase of a replayed scenario: the declared
// expectation against what the classifier and meta-partitioner did.
type ScenarioPhaseReport struct {
	Phase      string
	Start, End int // snapshot range [Start, End)
	// Expected is the declared octant name, "-" for mixed signatures.
	Expected string
	// Observed is the majority classified octant over the phase.
	Observed string
	// Partitioners counts selections within the phase.
	Partitioners map[string]int
}

// ScenarioReplayResult is a single composed-scenario replay.
type ScenarioReplayResult struct {
	Name      string
	Snapshots int
	Switches  int
	TotalTime float64
	Phases    []ScenarioPhaseReport
}

// ScenarioReplay parses a scenario spec string, replays it under the
// adaptive meta-partitioner on nprocs processors, and reports declared
// versus observed octants per phase — pragma-bench's -scenario mode.
func ScenarioReplay(specStr string, nprocs int) (*ScenarioReplayResult, error) {
	spec, err := scenario.ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	tr, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	rr, err := core.Run(tr, core.Adaptive{}, core.RunConfig{
		Machine:   cluster.SP2(nprocs),
		NProcs:    nprocs,
		WorkModel: spec.WorkModel,
	})
	if err != nil {
		return nil, err
	}
	chars, err := octant.CharacterizeTrace(tr, octant.DefaultThresholds(), 1)
	if err != nil {
		return nil, err
	}
	res := &ScenarioReplayResult{
		Name:      spec.Name,
		Snapshots: len(tr.Snapshots),
		Switches:  rr.Switches,
		TotalTime: rr.TotalTime,
	}
	for _, exp := range spec.Trajectory() {
		rep := ScenarioPhaseReport{
			Phase: exp.Phase, Start: exp.Start, End: exp.End,
			Expected:     "-",
			Partitioners: map[string]int{},
		}
		if exp.Known {
			rep.Expected = exp.Octant.String()
		}
		var votes [9]int
		for i := exp.Start; i < exp.End && i < len(chars); i++ {
			votes[chars[i].Octant]++
			rep.Partitioners[rr.Snapshots[i].Partitioner]++
		}
		best := octant.I
		for o := octant.I; o <= octant.VIII; o++ {
			if votes[o] > votes[best] {
				best = o
			}
		}
		rep.Observed = best.String()
		res.Phases = append(res.Phases, rep)
	}
	return res, nil
}

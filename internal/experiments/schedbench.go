package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/sched"
)

// SchedBenchResult summarizes one scheduler load run: many real (tiny)
// RM3D replays from several tenants pushed through the shared worker pool.
type SchedBenchResult struct {
	Workers int
	Tenants int
	Runs    int
	// WallSeconds is submission of the first run to completion of the last.
	WallSeconds   float64
	RunsPerSecond float64
	// MeanQueueSeconds and MeanRunSeconds average the per-run phases.
	MeanQueueSeconds float64
	MeanRunSeconds   float64
}

// schedBenchTrace is the tiny RM3D configuration the load benchmark
// replays: small enough that the scheduler, not the replay, dominates
// variance across CI runs, while still exercising the full core.Run path.
func schedBenchTrace() (cfg rm3d.Config) {
	cfg = rm3d.SmallConfig()
	cfg.BaseDims = [3]int{16, 8, 8}
	cfg.MaxDepth = 2
	cfg.CoarseSteps = 60
	return cfg
}

// SchedBench pushes runs tiny replays from tenants tenants through a
// workers-sized pool and reports end-to-end throughput and per-phase
// latencies. Every run must finish StateDone; anything else is an error.
func SchedBench(workers, runs, tenants int) (SchedBenchResult, error) {
	if tenants < 1 {
		tenants = 1
	}
	tr, err := rm3d.GenerateTrace(schedBenchTrace())
	if err != nil {
		return SchedBenchResult{}, err
	}
	p, err := partition.ByName("G-MISP+SP")
	if err != nil {
		return SchedBenchResult{}, err
	}
	s := sched.New(sched.Config{Workers: workers, QueueLimit: runs, KeepFinished: runs})
	defer s.Close()

	start := time.Now()
	ids := make([]string, 0, runs)
	for i := 0; i < runs; i++ {
		st, err := s.Submit(sched.SubmitRequest{
			Tenant:   fmt.Sprintf("tenant-%d", i%tenants),
			Priority: i % 3,
			Spec: sched.RunSpec{
				Trace:    tr,
				Strategy: core.Static{P: p},
				Machine:  cluster.SP2(4),
				NProcs:   4,
			},
		})
		if err != nil {
			return SchedBenchResult{}, fmt.Errorf("submission %d: %w", i, err)
		}
		ids = append(ids, st.ID)
	}
	var queueSum, runSum float64
	for _, id := range ids {
		st, err := s.Wait(context.Background(), id)
		if err != nil {
			return SchedBenchResult{}, err
		}
		if st.State != sched.StateDone {
			return SchedBenchResult{}, fmt.Errorf("run %s ended %s: %s", id, st.State, st.Error)
		}
		queueSum += st.QueueSeconds
		runSum += st.RunSeconds
	}
	wall := time.Since(start).Seconds()
	return SchedBenchResult{
		Workers:          workers,
		Tenants:          tenants,
		Runs:             runs,
		WallSeconds:      wall,
		RunsPerSecond:    float64(runs) / wall,
		MeanQueueSeconds: queueSum / float64(runs),
		MeanRunSeconds:   runSum / float64(runs),
	}, nil
}

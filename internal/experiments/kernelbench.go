package experiments

import (
	"fmt"
	"time"

	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

// KernelBenchRow compares the retained sequential reference kernel against
// the fused CommPlan kernel for one PAC evaluation primitive.
type KernelBenchRow struct {
	// Kernel names the primitive: EvalQuality, Adjacency, Migration.
	Kernel string
	// ReferenceSeconds is the best-of-repeats wall time of the sequential
	// reference (per-cell at() lookups, map-based pair dedup).
	ReferenceSeconds float64
	// PlanSeconds is the best-of-repeats wall time of the CommPlan kernel.
	PlanSeconds float64
	// Speedup is ReferenceSeconds / PlanSeconds.
	Speedup float64
}

// kernelHierarchy is the paper-scale benchmark workload: the RM3D base grid
// (128x32x32, factor-2 refinement, 3 levels) with a moving slab and a blob
// carrying a deeper core — the shapes the Table 4 experiments sweep.
func kernelHierarchy() (*samr.Hierarchy, error) {
	h, err := samr.NewHierarchy(samr.MakeBox(128, 32, 32), 2)
	if err != nil {
		return nil, err
	}
	if err := h.SetLevel(1, []samr.Box{
		{Lo: samr.Point{40, 0, 0}, Hi: samr.Point{72, 64, 64}},
		{Lo: samr.Point{160, 16, 16}, Hi: samr.Point{224, 56, 56}},
	}); err != nil {
		return nil, err
	}
	if err := h.SetLevel(2, []samr.Box{
		{Lo: samr.Point{96, 16, 16}, Hi: samr.Point{128, 112, 112}},
		{Lo: samr.Point{352, 48, 48}, Hi: samr.Point{432, 104, 104}},
	}); err != nil {
		return nil, err
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// best times f repeats times and returns the fastest run in seconds.
func best(repeats int, f func()) float64 {
	bestS := 0.0
	for i := 0; i < repeats; i++ {
		start := time.Now()
		f()
		if s := time.Since(start).Seconds(); i == 0 || s < bestS {
			bestS = s
		}
	}
	return bestS
}

// KernelBench measures the before/after cost of the PAC evaluation kernels
// on the paper-scale hierarchy at 64 processors: the full quality metric,
// the adjacency sweep, and the migration diff (measured at its steady-state
// regrid cost, where both cycles' plans already exist). Rows feed the
// EXPERIMENTS.md kernel table and the -json bench baseline.
func KernelBench(repeats int) ([]KernelBenchRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	h, err := kernelHierarchy()
	if err != nil {
		return nil, err
	}
	wm := samr.UniformWorkModel{}
	a, err := (partition.GMISPSP{}).Partition(h, wm, 64)
	if err != nil {
		return nil, err
	}
	prev, err := (partition.PBDISP{}).Partition(h, wm, 64)
	if err != nil {
		return nil, err
	}
	plan := partition.BuildCommPlan(h, a)
	prevPlan := partition.BuildCommPlan(h, prev)

	row := func(name string, ref, new func()) KernelBenchRow {
		r := KernelBenchRow{Kernel: name}
		r.ReferenceSeconds = best(repeats, ref)
		r.PlanSeconds = best(repeats, new)
		if r.PlanSeconds > 0 {
			r.Speedup = r.ReferenceSeconds / r.PlanSeconds
		}
		return r
	}
	rows := []KernelBenchRow{
		row("EvalQuality",
			func() {
				st, _ := partition.ReferenceCommunication(h, a)
				_ = st
				_ = partition.ReferenceMigrationFraction(h, prev, h, a)
			},
			func() { partition.EvalQuality(h, a, h, prev, 0) }),
		row("Adjacency",
			func() { partition.ReferenceCommunication(h, a) },
			func() { partition.BuildCommPlan(h, a) }),
		row("Migration",
			func() { partition.ReferenceMigrationFraction(h, prev, h, a) },
			func() { plan.MigrationFrom(prevPlan) }),
	}
	for _, r := range rows {
		if r.PlanSeconds <= 0 {
			return nil, fmt.Errorf("kernel %s: degenerate timing", r.Kernel)
		}
	}
	return rows, nil
}

// Package policy implements Pragma's adaptation policy knowledge base
// (§3.5): a programmable database of rules that relate system and
// application state abstractions to configurations, algorithms and
// mechanisms. Rules can be added, modified and removed at runtime;
// management agents query the base associatively — partial attribute sets
// are allowed and numeric attributes may match fuzzily — and receive
// actions ranked by degree of match and priority.
package policy

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Action is what a matched rule prescribes.
type Action struct {
	// Kind classifies the action, e.g. "select-partitioner",
	// "communication-mechanism", "configure-refinement".
	Kind string `json:"kind"`
	// Target is the action's object, e.g. "pBD-ISP" or
	// "latency-tolerant".
	Target string `json:"target"`
	// Params carries optional numeric configuration, e.g. partitioning
	// granularity or thresholds.
	Params map[string]float64 `json:"params,omitempty"`
}

// Fuzzy is a triangular membership function over a numeric attribute:
// membership rises linearly from Lo to 1 at Peak and falls back to 0 at
// Hi.
type Fuzzy struct {
	Lo   float64 `json:"lo"`
	Peak float64 `json:"peak"`
	Hi   float64 `json:"hi"`
}

// Membership returns the degree in [0,1] to which v belongs to the set.
func (f Fuzzy) Membership(v float64) float64 {
	switch {
	case v <= f.Lo || v >= f.Hi:
		return 0
	case v == f.Peak:
		return 1
	case v < f.Peak:
		if f.Peak == f.Lo {
			return 1
		}
		return (v - f.Lo) / (f.Peak - f.Lo)
	default:
		if f.Hi == f.Peak {
			return 1
		}
		return (f.Hi - v) / (f.Hi - f.Peak)
	}
}

// Match constrains one attribute. Exactly one of the matchers should be
// set; an empty Match matches everything with degree 1.
type Match struct {
	// Equals matches a categorical attribute exactly.
	Equals string `json:"equals,omitempty"`
	// Min/Max match a numeric attribute against a closed range; nil means
	// unbounded on that side.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Fuzzy matches a numeric attribute with a triangular membership.
	Fuzzy *Fuzzy `json:"fuzzy,omitempty"`
}

// degree returns how well the attribute value satisfies the match.
// Categorical mismatches and out-of-range numerics return 0.
func (m Match) degree(v interface{}) float64 {
	if m.Equals != "" {
		if s, ok := v.(string); ok && s == m.Equals {
			return 1
		}
		if s, ok := v.(fmt.Stringer); ok && s.String() == m.Equals {
			return 1
		}
		return 0
	}
	num, ok := toFloat(v)
	if !ok {
		return 0
	}
	if m.Fuzzy != nil {
		return m.Fuzzy.Membership(num)
	}
	if m.Min != nil && num < *m.Min {
		return 0
	}
	if m.Max != nil && num > *m.Max {
		return 0
	}
	return 1
}

func toFloat(v interface{}) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	default:
		return 0, false
	}
}

// Rule is one policy: a guard over state attributes and the action it
// recommends. Higher Priority wins among equally matching rules; among
// equal priorities, insertion order (Seq) is preserved — which is how
// Table 2's "first listed" partitioner preference is encoded.
type Rule struct {
	ID       string           `json:"id"`
	Priority int              `json:"priority"`
	When     map[string]Match `json:"when"`
	Then     Action           `json:"then"`
	// Seq is the insertion sequence number, assigned by the base.
	Seq int `json:"-"`
}

// Base is the programmable policy knowledge base. It is safe for
// concurrent use.
type Base struct {
	mu    sync.RWMutex
	rules map[string]*Rule
	next  int
}

// NewBase returns an empty knowledge base.
func NewBase() *Base {
	return &Base{rules: make(map[string]*Rule)}
}

// Add inserts or replaces a rule ("programmability of the knowledge base
// will allow rules to be modified, adapted and extended").
func (b *Base) Add(r Rule) error {
	if r.ID == "" {
		return fmt.Errorf("policy: rule without id")
	}
	if r.Then.Kind == "" {
		return fmt.Errorf("policy: rule %q has no action kind", r.ID)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if old, ok := b.rules[r.ID]; ok {
		r.Seq = old.Seq // replacing keeps the original position
	} else {
		r.Seq = b.next
		b.next++
	}
	b.rules[r.ID] = &r
	return nil
}

// Remove deletes a rule; removing an unknown id is a no-op returning
// false.
func (b *Base) Remove(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.rules[id]; !ok {
		return false
	}
	delete(b.rules, id)
	return true
}

// Len returns the number of rules.
func (b *Base) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.rules)
}

// Rules returns a copy of all rules sorted by insertion order.
func (b *Base) Rules() []Rule {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]Rule, 0, len(b.rules))
	for _, r := range b.rules {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Scored is a rule with its degree of match to a query.
type Scored struct {
	Rule   Rule
	Degree float64
}

// neutralDegree is the degree assigned to conditions whose attribute is
// absent from a partial query: the rule is neither confirmed nor excluded.
const neutralDegree = 0.5

// Query performs associative matching: it scores every rule against the
// (possibly partial) attribute set and returns those with degree > 0,
// sorted by degree, then priority, then insertion order. A rule's degree
// is the minimum over its conditions; conditions on attributes missing
// from the query contribute a neutral 0.5, enabling partial queries.
func (b *Base) Query(attrs map[string]interface{}) []Scored {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Scored
	for _, r := range b.rules {
		d := 1.0
		for attr, m := range r.When {
			v, present := attrs[attr]
			var dd float64
			if !present {
				dd = neutralDegree
			} else {
				dd = m.degree(v)
			}
			if dd < d {
				d = dd
			}
			if d == 0 {
				break
			}
		}
		if d > 0 {
			out = append(out, Scored{Rule: *r, Degree: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degree != out[j].Degree {
			return out[i].Degree > out[j].Degree
		}
		if out[i].Rule.Priority != out[j].Rule.Priority {
			return out[i].Rule.Priority > out[j].Rule.Priority
		}
		return out[i].Rule.Seq < out[j].Rule.Seq
	})
	return out
}

// BestAction returns the highest-ranked action of the given kind for the
// query, and false when nothing matches.
func (b *Base) BestAction(kind string, attrs map[string]interface{}) (Action, bool) {
	for _, s := range b.Query(attrs) {
		if s.Rule.Then.Kind == kind {
			return s.Rule.Then, true
		}
	}
	return Action{}, false
}

// MarshalJSON encodes the base as its rule list.
func (b *Base) MarshalJSON() ([]byte, error) {
	type persisted struct {
		Rule
		Seq int `json:"seq"`
	}
	rules := b.Rules()
	out := make([]persisted, len(rules))
	for i, r := range rules {
		out[i] = persisted{Rule: r, Seq: r.Seq}
	}
	return json.Marshal(out)
}

// UnmarshalJSON replaces the base's contents with the encoded rule list.
func (b *Base) UnmarshalJSON(data []byte) error {
	type persisted struct {
		Rule
		Seq int `json:"seq"`
	}
	var rules []persisted
	if err := json.Unmarshal(data, &rules); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rules = make(map[string]*Rule, len(rules))
	b.next = 0
	for _, p := range rules {
		r := p.Rule
		r.Seq = p.Seq
		if r.ID == "" {
			return fmt.Errorf("policy: persisted rule without id")
		}
		b.rules[r.ID] = &r
		if p.Seq >= b.next {
			b.next = p.Seq + 1
		}
	}
	return nil
}

package policy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randBase builds a base with random rules over a small attribute alphabet.
func randBase(rng *rand.Rand, n int) *Base {
	b := NewBase()
	octants := []string{"I", "II", "III", "IV", "V", "VI", "VII", "VIII"}
	for i := 0; i < n; i++ {
		when := map[string]Match{}
		if rng.Intn(2) == 0 {
			when["octant"] = Match{Equals: octants[rng.Intn(len(octants))]}
		}
		if rng.Intn(2) == 0 {
			lo := rng.Float64()
			peak := lo + rng.Float64()
			hi := peak + rng.Float64()
			when["load"] = Match{Fuzzy: &Fuzzy{Lo: lo, Peak: peak, Hi: hi}}
		}
		if rng.Intn(3) == 0 {
			min := float64(rng.Intn(16))
			max := min + float64(rng.Intn(64))
			when["procs"] = Match{Min: &min, Max: &max}
		}
		mustAdd(b, Rule{
			ID:       fmt.Sprintf("r%d", i),
			Priority: rng.Intn(5),
			When:     when,
			Then:     Action{Kind: "select-partitioner", Target: octants[rng.Intn(len(octants))]},
		})
	}
	return b
}

func TestQueryOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randBase(rng, 1+rng.Intn(20))
		attrs := map[string]interface{}{
			"octant": []string{"I", "II", "III", "IV", "V", "VI", "VII", "VIII"}[rng.Intn(8)],
			"load":   rng.Float64() * 3,
			"procs":  rng.Intn(96),
		}
		res := b.Query(attrs)
		for i := range res {
			if res[i].Degree <= 0 || res[i].Degree > 1 {
				return false
			}
			if i == 0 {
				continue
			}
			// Sorted by degree desc, then priority desc, then insertion.
			a, c := res[i-1], res[i]
			if a.Degree < c.Degree {
				return false
			}
			if a.Degree == c.Degree && a.Rule.Priority < c.Rule.Priority {
				return false
			}
			if a.Degree == c.Degree && a.Rule.Priority == c.Rule.Priority && a.Rule.Seq > c.Rule.Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRemoveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randBase(rng, 5+rng.Intn(10))
		before := b.Len()
		if err := b.Add(Rule{ID: "probe", Then: Action{Kind: "k", Target: "t"}}); err != nil {
			return false
		}
		if b.Len() != before+1 {
			return false
		}
		if !b.Remove("probe") {
			return false
		}
		return b.Len() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialQueryNeverBeatsFullMatchProperty(t *testing.T) {
	// A rule fully matched (all attributes present and matching exactly)
	// always ranks at degree 1; partial matches rank at most 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBase()
		mustAdd(b, Rule{
			ID:   "full",
			When: map[string]Match{"octant": {Equals: "III"}},
			Then: Action{Kind: "k", Target: "full"},
		})
		mustAdd(b, Rule{
			ID: "partial",
			When: map[string]Match{
				"octant":  {Equals: "III"},
				"network": {Equals: "cluster"},
			},
			Then: Action{Kind: "k", Target: "partial"},
		})
		_ = rng
		res := b.Query(map[string]interface{}{"octant": "III"})
		if len(res) != 2 {
			return false
		}
		return res[0].Rule.ID == "full" && res[0].Degree == 1 && res[1].Degree == 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

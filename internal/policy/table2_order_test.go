package policy

import (
	"testing"
)

// This file pins the priority structure of the Table-2 rule base — not
// just the query results but the encoded priorities themselves — so a
// silent edit to the rule table (a swapped rank, a dropped octant, a
// repriced comm rule) fails loudly even if it happens not to change some
// particular query's outcome.

// TestTable2PriorityEncodesPreferenceOrder walks all eight octants and
// checks each recommended scheme is encoded as a rule with priority
// 100 - rank: the paper's first-listed scheme at 100, the second at 99,
// the third at 98.
func TestTable2PriorityEncodesPreferenceOrder(t *testing.T) {
	b := Table2()
	byID := map[string]Rule{}
	for _, r := range b.Rules() {
		byID[r.ID] = r
	}
	recs := Table2Recommendations()
	octants := []string{"I", "II", "III", "IV", "V", "VI", "VII", "VIII"}
	if len(recs) != len(octants) {
		t.Fatalf("recommendations cover %d octants, want %d", len(recs), len(octants))
	}
	nPartitioner := 0
	for _, oct := range octants {
		schemes := recs[oct]
		if len(schemes) == 0 {
			t.Fatalf("octant %s: no recommended schemes", oct)
		}
		for rank, scheme := range schemes {
			id := "table2-" + oct + "-" + scheme
			r, ok := byID[id]
			if !ok {
				t.Errorf("octant %s: missing rule %q", oct, id)
				continue
			}
			nPartitioner++
			if want := 100 - rank; r.Priority != want {
				t.Errorf("%s: priority %d, want %d (preference rank %d)", id, r.Priority, want, rank)
			}
			if r.Then.Kind != "select-partitioner" || r.Then.Target != scheme {
				t.Errorf("%s: action %+v, want select-partitioner %s", id, r.Then, scheme)
			}
			if m, ok := r.When["octant"]; !ok || m.Equals != oct {
				t.Errorf("%s: octant guard %+v", id, r.When)
			}
		}
		// The top pick must also win BestAction for the octant.
		act, ok := b.BestAction("select-partitioner", map[string]interface{}{"octant": oct})
		if !ok || act.Target != schemes[0] {
			t.Errorf("octant %s: BestAction %+v ok=%v, want first preference %s", oct, act, ok, schemes[0])
		}
	}
	// No stray select-partitioner rules beyond the table.
	total := 0
	for _, r := range b.Rules() {
		if r.Then.Kind == "select-partitioner" {
			total++
		}
	}
	if total != nPartitioner {
		t.Errorf("%d select-partitioner rules in base, table describes %d", total, nPartitioner)
	}
}

// TestTable2MixedKindPriorities pins the §3.5 illustrative rules: the
// latency-tolerant communication rule exists for exactly the
// comm-dominated octants I, II, V, VI, gated on the cluster network at
// priority 50 (below every partitioner preference), and the cache-bound
// refinement rule sits at priority 10 with the 512 KB ceiling.
func TestTable2MixedKindPriorities(t *testing.T) {
	b := Table2()
	commOctants := map[string]bool{"I": true, "II": true, "V": true, "VI": true}
	seen := map[string]bool{}
	for _, r := range b.Rules() {
		switch r.Then.Kind {
		case "communication-mechanism":
			oct := r.When["octant"].Equals
			if !commOctants[oct] {
				t.Errorf("comm rule %s targets unexpected octant %q", r.ID, oct)
			}
			seen[oct] = true
			if r.Priority != 50 {
				t.Errorf("comm rule %s priority %d, want 50", r.ID, r.Priority)
			}
			if m, ok := r.When["network"]; !ok || m.Equals != "cluster" {
				t.Errorf("comm rule %s network guard %+v", r.ID, r.When)
			}
			if r.Then.Target != "latency-tolerant" {
				t.Errorf("comm rule %s target %q", r.ID, r.Then.Target)
			}
		case "configure-refinement":
			if r.Priority != 10 {
				t.Errorf("refinement rule %s priority %d, want 10", r.ID, r.Priority)
			}
			m, ok := r.When["cache-kb"]
			if !ok || m.Max == nil || *m.Max != 512 {
				t.Errorf("refinement rule %s cache guard %+v", r.ID, r.When)
			}
			seen["cache"] = true
		}
	}
	for oct := range commOctants {
		if !seen[oct] {
			t.Errorf("no comm rule for octant %s", oct)
		}
	}
	if !seen["cache"] {
		t.Error("no cache-bound refinement rule")
	}
	// Mixed-kind query: on a comm-dominated octant the partitioner
	// preference must outrank the comm rule, but both kinds answer.
	attrs := map[string]interface{}{"octant": "I", "network": "cluster"}
	scored := b.Query(attrs)
	if len(scored) < 3 {
		t.Fatalf("octant I cluster query returned %d rules", len(scored))
	}
	if scored[0].Rule.Then.Target != "pBD-ISP" {
		t.Errorf("top rule %+v, want pBD-ISP preference", scored[0].Rule.Then)
	}
	kinds := map[string]bool{}
	for _, s := range scored {
		kinds[s.Rule.Then.Kind] = true
	}
	if !kinds["select-partitioner"] || !kinds["communication-mechanism"] {
		t.Errorf("mixed-kind query kinds %v", kinds)
	}
}

package policy

import (
	"encoding/json"
	"testing"

	"github.com/pragma-grid/pragma/internal/octant"
)

func TestFuzzyMembership(t *testing.T) {
	fz := Fuzzy{Lo: 0, Peak: 5, Hi: 10}
	cases := []struct{ v, want float64 }{
		{-1, 0}, {0, 0}, {2.5, 0.5}, {5, 1}, {7.5, 0.5}, {10, 0}, {11, 0},
	}
	for _, c := range cases {
		if got := fz.Membership(c.v); got != c.want {
			t.Errorf("membership(%g) = %g, want %g", c.v, got, c.want)
		}
	}
	// Degenerate shoulders.
	left := Fuzzy{Lo: 5, Peak: 5, Hi: 10}
	if got := left.Membership(5.0001); got < 0.99 {
		t.Errorf("left-shoulder membership = %g", got)
	}
	right := Fuzzy{Lo: 0, Peak: 5, Hi: 5}
	if got := right.Membership(4.9999); got < 0.99 {
		t.Errorf("right-shoulder membership = %g", got)
	}
}

func TestAddRemoveUpdate(t *testing.T) {
	b := NewBase()
	if err := b.Add(Rule{}); err == nil {
		t.Error("rule without id accepted")
	}
	if err := b.Add(Rule{ID: "x"}); err == nil {
		t.Error("rule without action accepted")
	}
	r := Rule{ID: "r1", Then: Action{Kind: "k", Target: "a"}}
	if err := b.Add(r); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d", b.Len())
	}
	// Replacing keeps insertion order.
	r2 := Rule{ID: "r2", Then: Action{Kind: "k", Target: "b"}}
	if err := b.Add(r2); err != nil {
		t.Fatal(err)
	}
	replaced := Rule{ID: "r1", Then: Action{Kind: "k", Target: "a2"}}
	if err := b.Add(replaced); err != nil {
		t.Fatal(err)
	}
	rules := b.Rules()
	if len(rules) != 2 || rules[0].ID != "r1" || rules[0].Then.Target != "a2" {
		t.Fatalf("rules after replace: %+v", rules)
	}
	if !b.Remove("r1") || b.Remove("r1") {
		t.Fatal("remove semantics wrong")
	}
	if b.Len() != 1 {
		t.Fatalf("len after remove = %d", b.Len())
	}
}

func TestQueryRanking(t *testing.T) {
	b := NewBase()
	mustAdd(b, Rule{
		ID: "exact", Priority: 1,
		When: map[string]Match{"octant": {Equals: "VI"}},
		Then: Action{Kind: "select-partitioner", Target: "pBD-ISP"},
	})
	mustAdd(b, Rule{
		ID: "fuzzy", Priority: 1,
		When: map[string]Match{"load": {Fuzzy: &Fuzzy{Lo: 0.5, Peak: 1, Hi: 1.5}}},
		Then: Action{Kind: "select-partitioner", Target: "G-MISP+SP"},
	})
	res := b.Query(map[string]interface{}{"octant": "VI", "load": 0.75})
	if len(res) != 2 {
		t.Fatalf("query returned %d rules", len(res))
	}
	if res[0].Rule.ID != "exact" || res[0].Degree != 1 {
		t.Fatalf("first result %+v", res[0])
	}
	if res[1].Rule.ID != "fuzzy" || res[1].Degree != 0.5 {
		t.Fatalf("second result %+v", res[1])
	}
	// Non-matching categorical excludes the rule entirely.
	res = b.Query(map[string]interface{}{"octant": "I", "load": 2.0})
	if len(res) != 0 {
		t.Fatalf("mismatched query returned %d rules", len(res))
	}
}

func TestPartialQueryUsesNeutralDegree(t *testing.T) {
	b := NewBase()
	mustAdd(b, Rule{
		ID: "two-cond", Priority: 1,
		When: map[string]Match{
			"octant":  {Equals: "II"},
			"network": {Equals: "cluster"},
		},
		Then: Action{Kind: "communication-mechanism", Target: "latency-tolerant"},
	})
	// Partial query: only octant given; the network condition scores 0.5.
	res := b.Query(map[string]interface{}{"octant": "II"})
	if len(res) != 1 || res[0].Degree != 0.5 {
		t.Fatalf("partial query result %+v", res)
	}
}

func TestNumericRangeMatch(t *testing.T) {
	b := NewBase()
	mustAdd(b, Rule{
		ID: "range", Priority: 1,
		When: map[string]Match{"procs": {Min: f(8), Max: f(64)}},
		Then: Action{Kind: "x", Target: "y"},
	})
	if res := b.Query(map[string]interface{}{"procs": 32}); len(res) != 1 {
		t.Fatal("in-range numeric rejected")
	}
	if res := b.Query(map[string]interface{}{"procs": 4}); len(res) != 0 {
		t.Fatal("below-range numeric accepted")
	}
	if res := b.Query(map[string]interface{}{"procs": 128.0}); len(res) != 0 {
		t.Fatal("above-range numeric accepted")
	}
	// Non-numeric value for numeric matcher scores zero.
	if res := b.Query(map[string]interface{}{"procs": "many"}); len(res) != 0 {
		t.Fatal("non-numeric value accepted")
	}
}

func TestBestAction(t *testing.T) {
	b := Table2()
	act, ok := b.BestAction("select-partitioner", map[string]interface{}{"octant": "VII"})
	if !ok || act.Target != "G-MISP+SP" {
		t.Fatalf("octant VII action = %+v ok=%v", act, ok)
	}
	if _, ok := b.BestAction("select-partitioner", map[string]interface{}{"octant": "nope"}); ok {
		t.Fatal("unknown octant matched")
	}
	// Octants are also matched via their Stringer.
	act, ok = b.BestAction("select-partitioner", map[string]interface{}{"octant": octant.VI})
	if !ok || act.Target != "pBD-ISP" {
		t.Fatalf("stringer octant action = %+v ok=%v", act, ok)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	// The policy base must encode exactly the paper's Table 2, including
	// the preference order.
	b := Table2()
	want := Table2Recommendations()
	for oct, schemes := range want {
		var got []string
		for _, s := range b.Query(map[string]interface{}{"octant": oct}) {
			if s.Rule.Then.Kind == "select-partitioner" {
				got = append(got, s.Rule.Then.Target)
			}
		}
		if len(got) != len(schemes) {
			t.Fatalf("octant %s: got %v, want %v", oct, got, schemes)
		}
		for i := range schemes {
			if got[i] != schemes[i] {
				t.Fatalf("octant %s: got %v, want %v", oct, got, schemes)
			}
		}
	}
}

func TestTable2MixedKinds(t *testing.T) {
	b := Table2()
	// Octant VI on a cluster: both a partitioner and a communication
	// mechanism should be recommended.
	attrs := map[string]interface{}{"octant": "VI", "network": "cluster"}
	if act, ok := b.BestAction("communication-mechanism", attrs); !ok || act.Target != "latency-tolerant" {
		t.Fatalf("communication action = %+v ok=%v", act, ok)
	}
	if act, ok := b.BestAction("select-partitioner", attrs); !ok || act.Target != "pBD-ISP" {
		t.Fatalf("partitioner action = %+v ok=%v", act, ok)
	}
	// Cache-size rule fires on numeric attribute.
	if act, ok := b.BestAction("configure-refinement", map[string]interface{}{"cache-kb": 256}); !ok || act.Params["cells"] != 16384 {
		t.Fatalf("refinement action = %+v ok=%v", act, ok)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	b := Table2()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var restored Base
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != b.Len() {
		t.Fatalf("restored %d rules, want %d", restored.Len(), b.Len())
	}
	// Ranking order survives the round trip.
	for _, oct := range octantOrder {
		a1, ok1 := b.BestAction("select-partitioner", map[string]interface{}{"octant": oct})
		a2, ok2 := restored.BestAction("select-partitioner", map[string]interface{}{"octant": oct})
		if ok1 != ok2 || a1.Target != a2.Target {
			t.Fatalf("octant %s: %v/%v vs %v/%v", oct, a1, ok1, a2, ok2)
		}
	}
	// New rules added after restore get fresh sequence numbers.
	if err := restored.Add(Rule{ID: "new", Then: Action{Kind: "k", Target: "t"}}); err != nil {
		t.Fatal(err)
	}
	rules := restored.Rules()
	if rules[len(rules)-1].ID != "new" {
		t.Fatal("new rule not last in insertion order")
	}
	// Bad payloads are rejected.
	if err := json.Unmarshal([]byte(`[{"id":""}]`), &restored); err == nil {
		t.Fatal("rule without id unmarshalled")
	}
	if err := json.Unmarshal([]byte(`{`), &restored); err == nil {
		t.Fatal("syntax error unmarshalled")
	}
}

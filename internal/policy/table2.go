package policy

import "fmt"

// Table2 returns the paper's Table 2 as a policy base: the recommended
// mapping of application state octants onto partitioning schemes. Where an
// octant lists several schemes, the first listed gets the highest priority
// (this is the preference the RM3D characterization of Table 3 exercises).
//
//	Octant I    -> pBD-ISP, G-MISP+SP
//	Octant II   -> pBD-ISP
//	Octant III  -> G-MISP+SP, SP-ISP
//	Octant IV   -> G-MISP+SP, SP-ISP, ISP
//	Octant V    -> pBD-ISP
//	Octant VI   -> pBD-ISP
//	Octant VII  -> G-MISP+SP
//	Octant VIII -> G-MISP+SP, ISP
func Table2() *Base {
	recs := Table2Recommendations()
	b := NewBase()
	for _, octName := range octantOrder {
		for rank, scheme := range recs[octName] {
			rule := Rule{
				ID:       fmt.Sprintf("table2-%s-%s", octName, scheme),
				Priority: 100 - rank,
				When:     map[string]Match{"octant": {Equals: octName}},
				Then:     Action{Kind: "select-partitioner", Target: scheme},
			}
			if err := b.Add(rule); err != nil {
				panic(err) // static table; cannot fail
			}
		}
	}
	// Illustrative non-partitioning policies from §3.5, so the base also
	// exercises mixed-kind queries ("If on a networked cluster and AMR
	// application is in octant VI use latency-tolerant communication").
	for _, octName := range []string{"I", "II", "V", "VI"} {
		mustAdd(b, Rule{
			ID:       "comm-latency-tolerant-" + octName,
			Priority: 50,
			When: map[string]Match{
				"octant":  {Equals: octName},
				"network": {Equals: "cluster"},
			},
			Then: Action{Kind: "communication-mechanism", Target: "latency-tolerant"},
		})
	}
	mustAdd(b, Rule{
		ID:       "refinement-cache-bound",
		Priority: 10,
		When: map[string]Match{
			"cache-kb": {Max: f(512)},
		},
		Then: Action{
			Kind:   "configure-refinement",
			Target: "max-box-volume",
			Params: map[string]float64{"cells": 16384},
		},
	})
	return b
}

var octantOrder = []string{"I", "II", "III", "IV", "V", "VI", "VII", "VIII"}

// Table2Recommendations returns the raw octant -> schemes table, first
// listed first.
func Table2Recommendations() map[string][]string {
	return map[string][]string{
		"I":    {"pBD-ISP", "G-MISP+SP"},
		"II":   {"pBD-ISP"},
		"III":  {"G-MISP+SP", "SP-ISP"},
		"IV":   {"G-MISP+SP", "SP-ISP", "ISP"},
		"V":    {"pBD-ISP"},
		"VI":   {"pBD-ISP"},
		"VII":  {"G-MISP+SP"},
		"VIII": {"G-MISP+SP", "ISP"},
	}
}

func mustAdd(b *Base, r Rule) {
	if err := b.Add(r); err != nil {
		panic(err)
	}
}

func f(v float64) *float64 { return &v }

package telemetry

import "math"

// quantileFromCum estimates the q-quantile from cumulative bucket counts.
// bounds are the finite upper bounds, cum the cumulative count at each,
// and total the full observation count (including the +Inf bucket). The
// estimate interpolates linearly within the bucket holding the target
// rank — the same model Prometheus's histogram_quantile uses — so its
// error is bounded by the bucket width around the true quantile.
func quantileFromCum(bounds []float64, cum []uint64, total uint64, q float64) float64 {
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		upper := bounds[i]
		lower := 0.0
		var below uint64
		if i > 0 {
			lower = bounds[i-1]
			below = cum[i-1]
		}
		in := c - below
		if in == 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-float64(below))/float64(in)
	}
	// The rank falls in the +Inf bucket: the best point estimate the
	// histogram can give is its highest finite bound.
	if len(bounds) == 0 {
		return math.NaN()
	}
	return bounds[len(bounds)-1]
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation within buckets. It returns NaN for
// an empty histogram and the highest finite bucket bound when the target
// rank falls in the +Inf bucket. The estimate walks the live atomic
// counts; concurrent Observe calls may shift it by the in-flight
// observations, which is the usual monitoring tolerance.
func (h *Histogram) Quantile(q float64) float64 {
	var cum [64]uint64 // histograms here have ≲40 buckets; spill allocates
	n := len(h.bounds)
	var buf []uint64
	if n <= len(cum) {
		buf = cum[:n]
	} else {
		buf = make([]uint64, n)
	}
	var acc uint64
	for i := 0; i < n; i++ {
		acc += h.counts[i].Load()
		buf[i] = acc
	}
	total := acc + h.counts[n].Load()
	return quantileFromCum(h.bounds, buf, total, q)
}

// Quantile estimates the q-quantile of a snapshotted histogram series by
// linear interpolation within its buckets. Non-histogram series (no
// buckets) return NaN.
func (s SeriesSnapshot) Quantile(q float64) float64 {
	if len(s.Buckets) == 0 {
		return math.NaN()
	}
	var cum [64]uint64
	n := len(s.Buckets)
	var bufC []uint64
	var bufB []float64
	var bounds [64]float64
	if n <= len(cum) {
		bufC = cum[:n]
		bufB = bounds[:n]
	} else {
		bufC = make([]uint64, n)
		bufB = make([]float64, n)
	}
	for i, b := range s.Buckets {
		bufB[i] = b.UpperBound
		bufC[i] = b.CumulativeCount
	}
	return quantileFromCum(bufB, bufC, s.Count, q)
}

package telemetry

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// TestReadyzDefault: a handler with no readiness check reports ready.
func TestReadyzDefault(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(), nil, nil))
	defer srv.Close()
	code, body, _ := get(t, srv, "/readyz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/readyz = %d %q, want 200 ok", code, body)
	}
}

// TestReadyzDrainFlip is the load-balancer contract: once the serving
// process starts draining, /readyz flips to 503 so new work is routed
// elsewhere, while /healthz stays 200 — the process is alive and must not
// be restarted mid-drain.
func TestReadyzDrainFlip(t *testing.T) {
	var draining atomic.Bool
	mux := NewHandler(NewRegistry(), nil, nil)
	HandleReadiness(mux, func() error {
		if draining.Load() {
			return errors.New("scheduler draining")
		}
		return nil
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body, _ := get(t, srv, "/readyz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("ready /readyz = %d %q", code, body)
	}

	draining.Store(true)

	code, body, _ = get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d %q, want 503", code, body)
	}
	if !strings.Contains(body, "draining") {
		t.Fatalf("draining /readyz body %q, want the cause", body)
	}
	code, body, _ = get(t, srv, "/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("draining /healthz = %d %q, want 200 (alive, just not ready)", code, body)
	}
}

// TestReadyzLateInstall: HandleReadiness may be called again after
// NewHandler installed the default route — the check swaps in without
// double-registering the pattern (which would panic).
func TestReadyzLateInstall(t *testing.T) {
	mux := NewHandler(NewRegistry(), nil, nil)
	HandleReadiness(mux, func() error { return errors.New("no") })
	HandleReadiness(mux, func() error { return nil })
	srv := httptest.NewServer(mux)
	defer srv.Close()
	code, _, _ := get(t, srv, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz = %d after re-install, want 200", code)
	}
}

package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one key/value annotation on a trace, span or event. Values are
// strings to keep the schema flat and the JSONL dump greppable.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds an Attr.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one timed phase inside a trace (e.g. "assign", "migration").
type Span struct {
	Name  string `json:"name"`
	Start int64  `json:"start_us"` // microseconds since the trace start
	End   int64  `json:"end_us"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// TraceEvent is one instantaneous annotation inside a trace (e.g.
// "octant-classified").
type TraceEvent struct {
	Name  string `json:"name"`
	At    int64  `json:"at_us"` // microseconds since the trace start
	Attrs []Attr `json:"attrs,omitempty"`
}

// Trace is one recorded cycle: a named root with spans and events. A nil
// *Trace is a valid no-op receiver for every method, so instrumented code
// can carry an optional trace without nil checks.
type Trace struct {
	tracer *Tracer

	mu     sync.Mutex
	id     uint64
	name   string
	start  time.Time
	end    time.Time
	attrs  []Attr
	spans  []Span
	events []TraceEvent
	open   []int // indexes of started-but-unended spans, innermost last
	done   bool
}

// TraceRecord is the JSON form of a committed trace — one line of the
// /debug/pragma dump.
type TraceRecord struct {
	ID       uint64       `json:"id"`
	Name     string       `json:"name"`
	Start    time.Time    `json:"start"`
	Duration float64      `json:"duration_seconds"`
	Attrs    []Attr       `json:"attrs,omitempty"`
	Spans    []Span       `json:"spans,omitempty"`
	Events   []TraceEvent `json:"events,omitempty"`
}

// Tracer records traces into a fixed-capacity ring: memory is bounded and
// the newest traces win. The zero value is unusable; use NewTracer.
type Tracer struct {
	mu    sync.Mutex
	ring  []TraceRecord
	next  int // ring slot the next committed trace lands in
	count int // committed traces, saturating at len(ring)
	seq   uint64
}

// NewTracer returns a tracer retaining the most recent capacity traces
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]TraceRecord, capacity)}
}

// Begin starts a trace. The trace is invisible to Traces and dumps until
// End commits it; an abandoned trace costs only its own memory.
func (t *Tracer) Begin(name string, attrs ...Attr) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seq++
	id := t.seq
	t.mu.Unlock()
	return &Trace{
		tracer: t,
		id:     id,
		name:   name,
		start:  time.Now(),
		attrs:  append([]Attr(nil), attrs...),
	}
}

// us converts an absolute time into microseconds since the trace start.
func (tr *Trace) us(at time.Time) int64 { return at.Sub(tr.start).Microseconds() }

// StartSpan opens a timed phase. Spans may nest; End closes the innermost
// open span. The returned index is consumed by EndSpan via the trace's own
// bookkeeping, so callers just pair StartSpan with EndSpan.
func (tr *Trace) StartSpan(name string, attrs ...Attr) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return
	}
	tr.spans = append(tr.spans, Span{
		Name:  name,
		Start: tr.us(time.Now()),
		End:   -1,
		Attrs: append([]Attr(nil), attrs...),
	})
	tr.open = append(tr.open, len(tr.spans)-1)
}

// EndSpan closes the innermost open span, attaching any extra attributes.
func (tr *Trace) EndSpan(attrs ...Attr) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done || len(tr.open) == 0 {
		return
	}
	i := tr.open[len(tr.open)-1]
	tr.open = tr.open[:len(tr.open)-1]
	tr.spans[i].End = tr.us(time.Now())
	tr.spans[i].Attrs = append(tr.spans[i].Attrs, attrs...)
}

// Event records an instantaneous annotation.
func (tr *Trace) Event(name string, attrs ...Attr) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return
	}
	tr.events = append(tr.events, TraceEvent{
		Name:  name,
		At:    tr.us(time.Now()),
		Attrs: append([]Attr(nil), attrs...),
	})
}

// End commits the trace into the tracer's ring, closing any spans left
// open. Calling End twice is a no-op.
func (tr *Trace) End(attrs ...Attr) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.end = time.Now()
	endUS := tr.us(tr.end)
	for _, i := range tr.open {
		tr.spans[i].End = endUS
	}
	tr.open = nil
	tr.attrs = append(tr.attrs, attrs...)
	rec := TraceRecord{
		ID:       tr.id,
		Name:     tr.name,
		Start:    tr.start,
		Duration: tr.end.Sub(tr.start).Seconds(),
		Attrs:    tr.attrs,
		Spans:    tr.spans,
		Events:   tr.events,
	}
	t := tr.tracer
	tr.mu.Unlock()

	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.mu.Unlock()
}

// Traces returns the committed traces, oldest first.
func (t *Tracer) Traces() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRecord, 0, t.count)
	start := t.next - t.count
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// WriteJSONL dumps the committed traces as one JSON object per line,
// oldest first — the /debug/pragma format.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range t.Traces() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the metric types a Registry can hold.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
	KindGaugeFunc
)

// String returns the Prometheus TYPE name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing integer counter. Inc and Add are
// single atomic operations: lock-free, allocation-free, safe from any
// goroutine.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down. All operations are
// atomic and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is lock-free
// and allocation-free: a binary search over the bounds plus two atomic
// updates. Bucket i counts observations <= bounds[i]; the last slot counts
// the rest (+Inf).
type Histogram struct {
	bounds  []float64 // sorted upper bounds, fixed at creation
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Inline binary search: find the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each bound,
// ending with the +Inf bucket (== Count()). Cumulativity is computed here
// so concurrent Observe calls can stay per-bucket atomic.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// family is one registered metric name: its metadata plus all labeled
// children (one unlabeled child when the family has no labels).
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64
	fn      func() float64 // KindGaugeFunc only

	gen *atomic.Uint64 // the owning registry's structure generation

	mu       sync.RWMutex
	children map[string]*child
}

type child struct {
	values    []string
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry holds metric families. Lookup and registration take the
// registry lock; the returned handles never do.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	// gen counts structural changes (new family or child); the cached
	// JSON encode plan is invalidated when it moves.
	gen  atomic.Uint64
	plan atomic.Pointer[encodePlan]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether name matches the Prometheus metric/label name
// charset [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally must not contain
// colons, which we do not enforce separately — none of ours do).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup returns the family for name, creating it on first use. A name
// re-registered with a different kind, label set or bucket layout is a
// programming error and panics — silent divergence would corrupt the
// exposition.
func (r *Registry) lookup(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic(fmt.Sprintf("telemetry: invalid label name %q for metric %q", l, name))
		}
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("telemetry: unsorted buckets for metric %q", name))
		}
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.families[name]
		if !ok {
			f = &family{
				name:     name,
				help:     help,
				kind:     kind,
				labels:   append([]string(nil), labels...),
				buckets:  append([]float64(nil), buckets...),
				gen:      &r.gen,
				children: make(map[string]*child),
			}
			r.families[name] = f
			r.gen.Add(1)
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	if len(f.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with %d labels (was %d)", name, len(labels), len(f.labels)))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with label %q (was %q)", name, labels[i], f.labels[i]))
		}
	}
	if kind == KindHistogram {
		if len(f.buckets) != len(buckets) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with %d buckets (was %d)", name, len(buckets), len(f.buckets)))
		}
		for i := range buckets {
			if f.buckets[i] != buckets[i] {
				panic(fmt.Sprintf("telemetry: metric %q re-registered with bucket %g (was %g)", name, buckets[i], f.buckets[i]))
			}
		}
	}
	return f
}

// childKey joins label values with a byte that cannot appear in valid
// UTF-8 text, so distinct value tuples cannot collide.
func childKey(values []string) string {
	return strings.Join(values, "\xff")
}

// get returns the child for the given label values, creating it on first
// use.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{values: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Uint64, len(f.buckets)+1)
		c.histogram = h
	}
	f.children[key] = c
	if f.gen != nil {
		f.gen.Add(1)
	}
	return c
}

// Counter returns the (unlabeled) counter registered under name, creating
// it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, KindCounter, nil, nil).get(nil).counter
}

// Gauge returns the (unlabeled) gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, KindGauge, nil, nil).get(nil).gauge
}

// Histogram returns the (unlabeled) histogram registered under name with
// the given bucket upper bounds (nil = DefBuckets). The bounds are fixed
// at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, KindHistogram, nil, buckets).get(nil).histogram
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time — for quantities that are cheaper to sample than to maintain, like
// queue depths. Re-registering replaces the function (last wins), so a
// restarted component can rebind its collector.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, KindGaugeFunc, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family registered under name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, KindCounter, labels, nil)}
}

// With resolves the child counter for the given label values, creating it
// on first use. Resolution allocates; hot paths should resolve once and
// hold the handle.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, KindGauge, labels, nil)}
}

// With resolves the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family registered under name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, KindHistogram, labels, buckets)}
}

// With resolves the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values).histogram
}

// sortedFamilies snapshots the families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedChildren snapshots a family's children in label-value order.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	fn := f.fn
	f.mu.RUnlock()
	if f.kind == KindGaugeFunc && fn != nil {
		g := &Gauge{}
		g.Set(fn())
		out = append(out, &child{gauge: g})
	}
	sort.Slice(out, func(i, j int) bool {
		return childKey(out[i].values) < childKey(out[j].values)
	})
	return out
}

package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden locks the full text exposition format: HELP and
// TYPE lines, family and child ordering, label escaping, histogram bucket
// cumulativity with +Inf/_sum/_count, and float rendering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	c := r.CounterVec("pragma_test_requests_total",
		`Requests with "quotes", a \ backslash and a
newline in help.`, "path", "outcome")
	c.With(`/metrics`, "ok").Add(7)
	c.With("with\"quote", `with\slash`).Inc()
	c.With("with\nnewline", "ok").Inc()

	r.Gauge("pragma_test_temperature_celsius", "A plain gauge.").Set(36.6)
	r.Gauge("pragma_test_inf", "Extreme floats.").Set(1e308)

	h := r.Histogram("pragma_test_latency_seconds", "A histogram.", []float64{0.1, 0.5, 2.5})
	for _, v := range []float64{0.05, 0.1, 0.3, 1, 10} {
		h.Observe(v)
	}

	r.GaugeFunc("pragma_test_depth", "Sampled at exposition.", func() float64 { return 3 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cum_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`cum_seconds_bucket{le="1"} 1`,
		`cum_seconds_bucket{le="2"} 2`,
		`cum_seconds_bucket{le="+Inf"} 3`,
		`cum_seconds_sum 11`,
		`cum_seconds_count 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestSnapshotFind(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("find_total", "", "who").With("a").Add(5)
	series := r.Snapshot().Find("find_total")
	if len(series) != 1 || series[0].Value != 5 || series[0].Labels["who"] != "a" {
		t.Fatalf("Find = %+v", series)
	}
	if r.Snapshot().Find("absent") != nil {
		t.Fatal("Find(absent) != nil")
	}
}

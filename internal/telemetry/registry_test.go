package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestCounterIncAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "")
	if allocs := testing.AllocsPerRun(1000, c.Inc); allocs != 0 {
		t.Fatalf("Counter.Inc allocates %.1f bytes/op, want 0", allocs)
	}
}

func TestHistogramObserveAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hot_seconds", "", nil)
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.042) }); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f bytes/op, want 0", allocs)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "")
	g.Set(2.5)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("got %d bounds, %d buckets", len(bounds), len(cum))
	}
	// 0.5 and 1 land in le=1 (boundary is inclusive), 1.5 in le=2, 3 in
	// le=4, 100 in +Inf; counts are cumulative.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %g, want 106", h.Sum())
	}
}

func TestLookupIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "first help wins")
	b := r.Counter("same_total", "ignored")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles do not share state")
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "", "method", "code")
	v.With("GET", "200").Add(3)
	v.With("GET", "500").Inc()
	if got := v.With("GET", "200").Value(); got != 3 {
		t.Fatalf(`With("GET","200") = %d, want 3`, got)
	}
	// Distinct tuples that would collide under naive joining must not.
	w := r.CounterVec("join_total", "", "a", "b")
	w.With("x_y", "z").Inc()
	if got := w.With("x", "y_z").Value(); got != 0 {
		t.Fatalf("label tuples collided: %d", got)
	}
}

func TestGaugeFuncReplaced(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", "", func() float64 { return 1 })
	r.GaugeFunc("depth", "", func() float64 { return 7 })
	series := r.Snapshot().Find("depth")
	if len(series) != 1 || series[0].Value != 7 {
		t.Fatalf("gauge func not replaced: %+v", series)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"invalid name": func(r *Registry) { r.Counter("0bad", "") },
		"invalid label": func(r *Registry) {
			r.CounterVec("ok_total", "", "bad-label")
		},
		"kind mismatch": func(r *Registry) {
			r.Counter("dual", "")
			r.Gauge("dual", "")
		},
		"label mismatch": func(r *Registry) {
			r.CounterVec("lv_total", "", "a")
			r.CounterVec("lv_total", "", "b")
		},
		"unsorted buckets": func(r *Registry) {
			r.Histogram("h_seconds", "", []float64{2, 1})
		},
		"bucket mismatch": func(r *Registry) {
			r.Histogram("hb_seconds", "", []float64{1, 2})
			r.Histogram("hb_seconds", "", []float64{1, 3})
		},
		"wrong value count": func(r *Registry) {
			r.CounterVec("vc_total", "", "a").With("x", "y")
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

// TestConcurrentReadWrite hammers a registry with writers on every metric
// kind while readers render expositions and snapshots; run under -race this
// is the registry's data-race proof.
func TestConcurrentReadWrite(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	v := r.CounterVec("v_total", "", "who")
	r.GaugeFunc("fn", "", func() float64 { return g.Value() })

	const writers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			who := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / iters)
				v.With(who).Inc()
				if i%500 == 0 {
					// New families mid-flight exercise the registry lock.
					r.Counter("late_total", "").Inc()
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			if got := c.Value(); got != writers*iters {
				t.Fatalf("counter = %d, want %d", got, writers*iters)
			}
			if got := h.Count(); got != writers*iters {
				t.Fatalf("histogram count = %d, want %d", got, writers*iters)
			}
			if got := g.Value(); got != writers*iters {
				t.Fatalf("gauge = %g, want %d", got, writers*iters)
			}
			return
		default:
			var sink discard
			if err := r.WritePrometheus(&sink); err != nil {
				t.Fatalf("WritePrometheus: %v", err)
			}
			r.Snapshot()
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestGaugeAddConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10000; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); math.Abs(got-20000) > 1e-6 {
		t.Fatalf("gauge = %g, want 20000", got)
	}
}

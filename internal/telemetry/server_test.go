package telemetry

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv_total", "a counter").Add(9)
	tr := NewTracer(4)
	c := tr.Begin("regrid")
	c.StartSpan("repartition")
	c.EndSpan()
	c.End()

	srv := httptest.NewServer(NewHandler(r, tr, nil))
	defer srv.Close()

	code, body, ct := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	if !strings.Contains(body, "srv_total 9\n") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	code, body, ct = get(t, srv, "/metrics.json")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json status %d content-type %q", code, ct)
	}
	if !strings.Contains(body, `"srv_total"`) {
		t.Fatalf("/metrics.json missing metric:\n%s", body)
	}

	code, body, _ = get(t, srv, "/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body, _ = get(t, srv, "/debug/pragma")
	if code != http.StatusOK {
		t.Fatalf("/debug/pragma status %d", code)
	}
	if !strings.Contains(body, `"name":"regrid"`) || !strings.Contains(body, `"repartition"`) {
		t.Fatalf("/debug/pragma missing trace:\n%s", body)
	}
}

func TestHealthzUnhealthy(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(), nil, func() error {
		return errors.New("control network partitioned")
	}))
	defer srv.Close()
	code, body, _ := get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status %d, want 503", code)
	}
	if !strings.Contains(body, "control network partitioned") {
		t.Fatalf("/healthz body %q", body)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("live_total", "").Inc()
	srv, err := Serve("127.0.0.1:0", r, NewTracer(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "live_total 1") {
		t.Fatalf("served metrics missing counter:\n%s", body)
	}
}

package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantileUniform(t *testing.T) {
	// 10,000 samples uniform on [0,100) into 10 equal buckets: every
	// quantile is exactly recoverable by linear interpolation.
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	reg := NewRegistry()
	h := reg.Histogram("uniform", "", bounds)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i) * 0.01)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.95, 95}, {0.99, 99}, {0.1, 10}, {1.0, 100},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.02 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantileExponential(t *testing.T) {
	// Exponential with mean 10; interpolation error is bounded by bucket
	// width, so assert the estimate lands inside the true value's bucket.
	bounds := []float64{1, 2, 5, 10, 20, 50, 100, 200}
	reg := NewRegistry()
	h := reg.Histogram("expo", "", bounds)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		h.Observe(rng.ExpFloat64() * 10)
	}
	for _, tc := range []struct{ q, lo, hi float64 }{
		{0.5, 5, 10},    // true p50 = 6.93
		{0.95, 20, 50},  // true p95 = 29.96
		{0.99, 20, 100}, // true p99 = 46.05, near a bucket edge
	} {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("Quantile(%g) = %g, want within [%g,%g]", tc.q, got, tc.lo, tc.hi)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge", "", []float64{1, 2, 4})

	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %g, want NaN", got)
	}

	// All mass in the +Inf bucket: the histogram cannot see past its
	// highest finite bound.
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("+Inf-bucket Quantile = %g, want 4 (highest finite bound)", got)
	}

	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %g, want NaN", got)
	}

	// Out-of-range q clamps rather than extrapolating.
	if got := h.Quantile(-1); math.IsNaN(got) {
		t.Errorf("Quantile(-1) = NaN, want clamped estimate")
	}
	if got := h.Quantile(2); got != 4 {
		t.Errorf("Quantile(2) = %g, want 4", got)
	}
}

func TestQuantileSingleBucketInterpolation(t *testing.T) {
	// 4 observations all landing in (10,20]: p50 at rank 2 of 4 →
	// 10 + 10*(2/4) = 15.
	reg := NewRegistry()
	h := reg.Histogram("single", "", []float64{10, 20, 30})
	for i := 0; i < 4; i++ {
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("Quantile(0.5) = %g, want 15", got)
	}
	// First bucket interpolates from 0: 3 obs ≤10, p50 → rank 1.5 of 3
	// within [0,10] = 5.
	reg2 := NewRegistry()
	h2 := reg2.Histogram("first", "", []float64{10, 20})
	for i := 0; i < 3; i++ {
		h2.Observe(4)
	}
	if got := h2.Quantile(0.5); got != 5 {
		t.Errorf("first-bucket Quantile(0.5) = %g, want 5", got)
	}
}

func TestSeriesSnapshotQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("snapq", "", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i) * 0.01)
	}
	series := reg.Snapshot().Find("snapq")
	if len(series) != 1 {
		t.Fatalf("want 1 series, got %d", len(series))
	}
	if got := series[0].Quantile(0.99); math.Abs(got-99) > 0.02 {
		t.Errorf("snapshot Quantile(0.99) = %g, want 99", got)
	}
	// Live histogram and snapshot must agree exactly when quiescent.
	if live, snap := h.Quantile(0.75), series[0].Quantile(0.75); live != snap {
		t.Errorf("live %g != snapshot %g", live, snap)
	}
	// A counter series has no buckets.
	reg.Counter("plain", "").Inc()
	if got := reg.Snapshot().Find("plain")[0].Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("counter Quantile = %g, want NaN", got)
	}
}

func TestQuantileZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("qalloc", "", nil) // DefBuckets
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i % 50))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Quantile(0.99)
	})
	if allocs != 0 {
		t.Errorf("Histogram.Quantile allocates %v allocs/op, want 0", allocs)
	}
}

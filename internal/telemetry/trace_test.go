package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"testing"
)

func TestTraceSpansAndEvents(t *testing.T) {
	tr := NewTracer(4)
	c := tr.Begin("regrid", String("strategy", "adaptive"))
	c.StartSpan("repartition")
	c.Event("octant-classified", String("octant", "VII"))
	c.EndSpan(String("partitioner", "G-MISP+SP"))
	c.StartSpan("outer")
	c.StartSpan("inner")
	c.EndSpan() // closes inner
	c.End(String("result", "ok"))

	recs := tr.Traces()
	if len(recs) != 1 {
		t.Fatalf("got %d traces, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Name != "regrid" || rec.ID != 1 {
		t.Fatalf("unexpected record %+v", rec)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rec.Spans))
	}
	for _, s := range rec.Spans {
		if s.End < s.Start {
			t.Fatalf("span %q left open: start %d end %d", s.Name, s.Start, s.End)
		}
	}
	if rec.Spans[0].Attrs[len(rec.Spans[0].Attrs)-1].Value != "G-MISP+SP" {
		t.Fatalf("EndSpan attrs not attached: %+v", rec.Spans[0].Attrs)
	}
	if len(rec.Events) != 1 || rec.Events[0].Name != "octant-classified" {
		t.Fatalf("events = %+v", rec.Events)
	}
	if got := rec.Attrs[len(rec.Attrs)-1]; got.Key != "result" {
		t.Fatalf("End attrs not attached: %+v", rec.Attrs)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		c := tr.Begin(fmt.Sprintf("t%d", i))
		c.End()
	}
	recs := tr.Traces()
	if len(recs) != 4 {
		t.Fatalf("got %d traces, want 4 (ring capacity)", len(recs))
	}
	for i, rec := range recs {
		wantID := uint64(7 + i) // oldest surviving is #7, oldest first
		if rec.ID != wantID {
			t.Fatalf("traces[%d].ID = %d, want %d", i, rec.ID, wantID)
		}
	}
}

func TestTraceEndIdempotentAndAbandoned(t *testing.T) {
	tr := NewTracer(4)
	c := tr.Begin("once")
	c.End()
	c.End()
	c.Event("after-end") // must not resurface
	if got := len(tr.Traces()); got != 1 {
		t.Fatalf("double End committed %d traces", got)
	}
	tr.Begin("abandoned") // never ended: invisible
	if got := len(tr.Traces()); got != 1 {
		t.Fatalf("abandoned trace committed (%d traces)", got)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.StartSpan("s")
	tr.EndSpan()
	tr.Event("e")
	tr.End()
	var tc *Tracer
	got := tc.Begin("x")
	if got != nil {
		t.Fatal("nil tracer returned a trace")
	}
	got.StartSpan("s")
	got.End()
	if tc.Traces() != nil {
		t.Fatal("nil tracer has traces")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		c := tr.Begin("cycle", String("index", strconv.Itoa(i)))
		c.StartSpan("phase")
		c.EndSpan()
		c.End()
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if rec.Name != "cycle" {
			t.Fatalf("line %d name = %q", lines, rec.Name)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("got %d JSONL lines, want 3", lines)
	}
}

// TestTracerConcurrent commits traces from many goroutines while readers
// drain the ring; under -race this is the ring's thread-safety proof.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := tr.Begin("concurrent")
				c.StartSpan("s")
				c.Event("e")
				c.EndSpan()
				c.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			if got := len(tr.Traces()); got != 16 {
				t.Fatalf("ring holds %d traces, want 16", got)
			}
			return
		default:
			tr.Traces()
		}
	}
}

package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// escapeHelp escapes a HELP string per the Prometheus text format:
// backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {k="v",...} for the given names and values; extra
// appends additional pre-rendered pairs (used for histogram le). Empty
// when there are no pairs at all.
func labelPairs(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and children
// by label values, histograms with cumulative buckets plus _sum and
// _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, c := range children {
			switch {
			case c.counter != nil:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelPairs(f.labels, c.values, ""), c.counter.Value()); err != nil {
					return err
				}
			case c.gauge != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelPairs(f.labels, c.values, ""), formatFloat(c.gauge.Value())); err != nil {
					return err
				}
			case c.histogram != nil:
				h := c.histogram
				bounds, cum := h.Buckets()
				for i, bound := range bounds {
					le := fmt.Sprintf(`le="%s"`, formatFloat(bound))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, c.values, le), cum[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, c.values, `le="+Inf"`), cum[len(cum)-1]); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelPairs(f.labels, c.values, ""), formatFloat(h.Sum())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelPairs(f.labels, c.values, ""), cum[len(cum)-1]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// BucketSnapshot is one histogram bucket in a Snapshot.
type BucketSnapshot struct {
	// UpperBound is the bucket's le bound; +Inf is omitted (it equals
	// Count).
	UpperBound float64 `json:"le"`
	// CumulativeCount counts observations <= UpperBound.
	CumulativeCount uint64 `json:"count"`
}

// SeriesSnapshot is one labeled series in a Snapshot.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds counter and gauge values.
	Value float64 `json:"value"`
	// Sum, Count and Buckets are histogram-only.
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"observations,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// MetricSnapshot is one metric family in a Snapshot.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time JSON-friendly copy of the registry — the
// programmatic twin of WritePrometheus, consumed by reports and tests
// that want values rather than text.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		ms := MetricSnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, c := range f.sortedChildren() {
			var s SeriesSnapshot
			if len(f.labels) > 0 {
				s.Labels = make(map[string]string, len(f.labels))
				for i, l := range f.labels {
					s.Labels[l] = c.values[i]
				}
			}
			switch {
			case c.counter != nil:
				s.Value = float64(c.counter.Value())
			case c.gauge != nil:
				s.Value = c.gauge.Value()
			case c.histogram != nil:
				bounds, cum := c.histogram.Buckets()
				s.Sum = c.histogram.Sum()
				s.Count = cum[len(cum)-1]
				for i, b := range bounds {
					s.Buckets = append(s.Buckets, BucketSnapshot{UpperBound: b, CumulativeCount: cum[i]})
				}
			}
			ms.Series = append(ms.Series, s)
		}
		if len(ms.Series) > 0 {
			snap.Metrics = append(snap.Metrics, ms)
		}
	}
	return snap
}

// Find returns the series of the named metric in the snapshot, nil when
// the metric is absent.
func (s Snapshot) Find(name string) []SeriesSnapshot {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m.Series
		}
	}
	return nil
}

// Package telemetry is Pragma's observability subsystem: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms, all with optional labels), a ring-buffered tracer that
// records each regrid cycle as a structured trace, exposition in the
// Prometheus text format and as a JSON snapshot, and an HTTP server
// wiring the three together (/metrics, /healthz, /debug/pragma).
//
// The paper's first component is system characterization — NWS-style
// monitoring the runtime consumes to steer adaptation. This package turns
// the same lens on the runtime itself, so regrid latency, partitioner
// selections, agent queue depths and checkpoint cost are observable while
// a run is live.
//
// Hot-path cost is the design constraint: once a handle is resolved
// (Counter, Gauge, Histogram — directly or via a Vec's With), increments
// and observations are single atomic operations with zero allocations.
// Resolving a labeled child allocates; instrumented code resolves its
// children once at package init and holds them.
//
// The package has no dependencies outside the standard library and no
// dependencies on the rest of the repo, so every layer can import it.
package telemetry

// Default is the process-wide registry the runtime's instrumentation
// registers on; cmd/pragma-node and cmd/gridmon expose it over HTTP.
var Default = NewRegistry()

// DefaultTracer is the process-wide trace ring (most recent 64 regrid
// cycles); /debug/pragma dumps it.
var DefaultTracer = NewTracer(64)

// DefBuckets are general-purpose duration buckets in seconds, from 100µs
// to ~100s — wide enough for both hot BSP steps and slow regrids.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// ByteBuckets suit payload sizes, from 64B to 16MB.
var ByteBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// LinearBuckets returns n buckets starting at start, each width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n buckets starting at start, each factor
// larger than the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/pragma-grid/pragma/internal/jsonenc"
)

// populate builds a registry exercising every metric shape the encoder
// handles: plain counter/gauge, labeled vecs, histograms with and without
// observations, gauge funcs, escaping-hostile names in label values.
func populate(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("plain_total", "a plain counter").Add(42)
	reg.Gauge("depth", "").Set(-3.75)
	cv := reg.CounterVec("reqs_total", "labeled counter", "tenant", "code")
	cv.With("alice", "200").Add(7)
	cv.With("bob \"the\" builder", "429").Inc()
	cv.With("z\nwith\tescapes", "503").Add(2)
	gv := reg.GaugeVec("load", "labeled gauge", "zone")
	gv.With("east").Set(0.25)
	gv.With("west").Set(1e-9) // exercises json's 'e' float form
	h := reg.Histogram("latency_seconds", "request latency", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.002)
	}
	reg.Histogram("empty_hist", "no observations yet", []float64{1, 2})
	hv := reg.HistogramVec("op_seconds", "", []float64{0.5, 5}, "op")
	hv.With("submit").Observe(0.3)
	hv.With("status").Observe(7)
	reg.GaugeFunc("computed", "sampled at exposition", func() float64 { return 12.5 })
	return reg
}

func TestAppendJSONMatchesEncodingJSON(t *testing.T) {
	reg := populate(t)
	want, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b := jsonenc.Get()
	defer jsonenc.Put(b)
	reg.AppendJSON(b)
	if !bytes.Equal(b.B, want) {
		t.Errorf("AppendJSON diverges from json.Marshal(Snapshot())\n got: %s\nwant: %s", b.B, want)
	}

	// Mutate values (no structural change) and re-encode: the cached plan
	// must still match.
	reg.Counter("plain_total", "a plain counter").Inc()
	reg.Histogram("latency_seconds", "request latency", []float64{0.001, 0.01, 0.1, 1}).Observe(0.5)
	want, _ = json.Marshal(reg.Snapshot())
	b.Reset()
	reg.AppendJSON(b)
	if !bytes.Equal(b.B, want) {
		t.Errorf("re-encode diverges after value mutation\n got: %s\nwant: %s", b.B, want)
	}

	// Structural change (new child) must invalidate the plan.
	reg.CounterVec("reqs_total", "labeled counter", "tenant", "code").With("carol", "200").Inc()
	want, _ = json.Marshal(reg.Snapshot())
	b.Reset()
	reg.AppendJSON(b)
	if !bytes.Equal(b.B, want) {
		t.Errorf("re-encode diverges after structural change\n got: %s\nwant: %s", b.B, want)
	}
}

func TestAppendJSONEmptyRegistry(t *testing.T) {
	reg := NewRegistry()
	want, _ := json.Marshal(reg.Snapshot())
	b := jsonenc.Get()
	defer jsonenc.Put(b)
	reg.AppendJSON(b)
	if got := string(b.B); got != string(want) {
		t.Errorf("empty registry: got %s, want %s", got, want)
	}
}

func TestWriteJSONMatchesEncoder(t *testing.T) {
	reg := populate(t)
	var want bytes.Buffer
	json.NewEncoder(&want).Encode(reg.Snapshot())
	var got bytes.Buffer
	if err := reg.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("WriteJSON diverges from json.Encoder\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}
}

func TestAppendJSONZeroAllocs(t *testing.T) {
	reg := populate(t)
	b := jsonenc.Get()
	reg.AppendJSON(b) // warm the plan and size the buffer
	jsonenc.Put(b)
	allocs := testing.AllocsPerRun(1000, func() {
		buf := jsonenc.Get()
		reg.AppendJSON(buf)
		jsonenc.Put(buf)
	})
	if allocs != 0 {
		t.Errorf("AppendJSON allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkServeMetricsJSON(b *testing.B) {
	reg := NewRegistry()
	cv := reg.CounterVec("reqs_total", "", "tenant", "code")
	cv.With("a", "200").Add(100)
	cv.With("b", "429").Add(3)
	h := reg.Histogram("latency_seconds", "", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
	buf := jsonenc.Get()
	reg.AppendJSON(buf)
	jsonenc.Put(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := jsonenc.Get()
		reg.AppendJSON(out)
		jsonenc.Put(out)
	}
}

func BenchmarkServeMetricsJSONStdlib(b *testing.B) {
	reg := NewRegistry()
	cv := reg.CounterVec("reqs_total", "", "tenant", "code")
	cv.With("a", "200").Add(100)
	cv.With("b", "429").Add(3)
	h := reg.Histogram("latency_seconds", "", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(reg.Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}

package telemetry

import (
	"io"
	"sort"

	"github.com/pragma-grid/pragma/internal/jsonenc"
)

// encodePlan is a cached, pre-sorted view of the registry used by
// AppendJSON. Building it allocates (sorting families, children and label
// orders), so it is rebuilt only when the registry's structure generation
// moves — i.e. when a new family or child appears. Steady-state serving
// reuses the plan and encodes with zero allocations.
type encodePlan struct {
	gen      uint64
	families []planFamily
}

type planFamily struct {
	f        *family
	kind     string
	labelIdx []int    // family label positions in sorted-by-name order
	children []*child // sorted by label values; empty for KindGaugeFunc
}

func (r *Registry) encodePlan() *encodePlan {
	gen := r.gen.Load()
	if p := r.plan.Load(); p != nil && p.gen == gen {
		return p
	}
	p := &encodePlan{gen: gen}
	for _, f := range r.sortedFamilies() {
		pf := planFamily{f: f, kind: f.kind.String()}
		// encoding/json renders the labels map with sorted keys; fix the
		// order once here so the encoder can stream it.
		pf.labelIdx = make([]int, len(f.labels))
		for i := range pf.labelIdx {
			pf.labelIdx[i] = i
		}
		sort.Slice(pf.labelIdx, func(a, b int) bool {
			return f.labels[pf.labelIdx[a]] < f.labels[pf.labelIdx[b]]
		})
		if f.kind != KindGaugeFunc {
			f.mu.RLock()
			pf.children = make([]*child, 0, len(f.children))
			for _, c := range f.children {
				pf.children = append(pf.children, c)
			}
			f.mu.RUnlock()
			sort.Slice(pf.children, func(i, j int) bool {
				return childKey(pf.children[i].values) < childKey(pf.children[j].values)
			})
			if len(pf.children) == 0 {
				continue
			}
		}
		p.families = append(p.families, pf)
	}
	r.plan.Store(p)
	return p
}

// AppendJSON appends the registry's snapshot to b in exactly the bytes
// json.Marshal(r.Snapshot()) would produce — the /metrics.json wire format
// — without allocating once the encode plan is warm. Values are read live
// from the atomic metric cells, so concurrent observations may land
// between two series of the same document (the same tolerance Snapshot
// has).
func (r *Registry) AppendJSON(b *jsonenc.Buffer) {
	p := r.encodePlan()
	b.Raw(`{"metrics":`)
	mark := b.Len()
	b.Byte('[')
	emitted := 0
	for i := range p.families {
		pf := &p.families[i]
		f := pf.f
		var fn func() float64
		if f.kind == KindGaugeFunc {
			f.mu.RLock()
			fn = f.fn
			f.mu.RUnlock()
			if fn == nil {
				continue
			}
		}
		if emitted > 0 {
			b.Byte(',')
		}
		emitted++
		b.Raw(`{"name":`)
		b.String(f.name)
		if f.help != "" {
			b.Raw(`,"help":`)
			b.String(f.help)
		}
		b.Raw(`,"kind":`)
		b.String(pf.kind)
		b.Raw(`,"series":[`)
		if fn != nil {
			b.Raw(`{"value":`)
			b.Float(fn())
			b.Raw(`}`)
		}
		for ci, c := range pf.children {
			if ci > 0 {
				b.Byte(',')
			}
			b.Byte('{')
			if len(f.labels) > 0 {
				b.Raw(`"labels":{`)
				for li, idx := range pf.labelIdx {
					if li > 0 {
						b.Byte(',')
					}
					b.String(f.labels[idx])
					b.Byte(':')
					b.String(c.values[idx])
				}
				b.Raw(`},`)
			}
			b.Raw(`"value":`)
			switch {
			case c.counter != nil:
				b.Float(float64(c.counter.Value()))
			case c.gauge != nil:
				b.Float(c.gauge.Value())
			default:
				b.Byte('0')
			}
			if h := c.histogram; h != nil {
				if sum := h.Sum(); sum != 0 {
					b.Raw(`,"sum":`)
					b.Float(sum)
				}
				// Total first (field order), then stream cumulative
				// buckets in a second pass over the atomic cells.
				var total uint64
				for i := range h.counts {
					total += h.counts[i].Load()
				}
				if total != 0 {
					b.Raw(`,"observations":`)
					b.Uint(total)
				}
				if len(h.bounds) > 0 {
					b.Raw(`,"buckets":[`)
					var acc uint64
					for i, bound := range h.bounds {
						if i > 0 {
							b.Byte(',')
						}
						acc += h.counts[i].Load()
						b.Raw(`{"le":`)
						b.Float(bound)
						b.Raw(`,"count":`)
						b.Uint(acc)
						b.Byte('}')
					}
					b.Byte(']')
				}
			}
			b.Byte('}')
		}
		b.Raw(`]}`)
	}
	if emitted == 0 {
		b.B = b.B[:mark]
		b.Raw(`null`)
	} else {
		b.Byte(']')
	}
	b.Byte('}')
}

// WriteJSON writes the /metrics.json document (AppendJSON plus the
// trailing newline json.Encoder emits) through a pooled buffer.
func (r *Registry) WriteJSON(w io.Writer) error {
	b := jsonenc.Get()
	r.AppendJSON(b)
	b.Byte('\n')
	_, err := w.Write(b.B)
	jsonenc.Put(b)
	return err
}

package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// NewHandler builds the telemetry HTTP mux:
//
//	/metrics       Prometheus text exposition of reg
//	/metrics.json  JSON snapshot of reg
//	/healthz       200 "ok" while health() returns nil, else 503
//	/readyz        200 "ok" until HandleReadiness's ready() errors, then 503
//	/debug/pragma  JSONL dump of tracer's recorded traces
//
// health may be nil (always healthy); tracer may be nil (empty dump).
// The returned mux is open for extension: callers mount additional routes
// on it (pragma-node -sched adds the scheduler's /sched/ endpoints) and
// serve the combined handler with ServeHandler.
//
// Liveness and readiness are deliberately separate endpoints: a draining
// scheduler is still alive (the process must not be restarted while it
// checkpoints in-flight runs) but no longer ready (load balancers must stop
// routing new submissions to it). /healthz answers the first question,
// /readyz the second — see HandleReadiness.
func NewHandler(reg *Registry, tracer *Tracer, health func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Pooled zero-allocation encode; byte-identical to the old
		// json.NewEncoder(w).Encode(reg.Snapshot()) wire format.
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pragma", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		tracer.WriteJSONL(w)
	})
	HandleReadiness(mux, nil)
	return mux
}

// readyzPattern is the readiness route. It is registered exactly once per
// mux; HandleReadiness swaps the check behind it.
const readyzPattern = "/readyz"

// readiness holds the swappable readiness checks of the muxes built by
// NewHandler. Keyed by mux so several servers in one process (tests) stay
// independent.
var readiness sync.Map // *http.ServeMux -> func() error

// HandleReadiness installs (or replaces) the readiness check behind the
// mux's /readyz endpoint: 200 "ok" while ready() returns nil, 503 with the
// error text afterwards. A nil ready means always ready.
//
// The split from /healthz matters during graceful shutdown: once a
// scheduler starts draining, ready() should return an error so load
// balancers take the node out of rotation, while /healthz keeps returning
// 200 so orchestrators do not kill the process before in-flight runs have
// checkpointed. Calling HandleReadiness again (e.g. after the scheduler is
// constructed) replaces the previous check.
func HandleReadiness(mux *http.ServeMux, ready func() error) {
	if _, installed := readiness.Swap(mux, ready); installed {
		return // route already registered; the swap is all that was needed
	}
	mux.HandleFunc(readyzPattern, func(w http.ResponseWriter, req *http.Request) {
		if fn, ok := readiness.Load(mux); ok && fn != nil {
			if check, ok := fn.(func() error); ok && check != nil {
				if err := check(); err != nil {
					http.Error(w, err.Error(), http.StatusServiceUnavailable)
					return
				}
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// Server is a running telemetry endpoint.
type Server struct {
	ln   net.Listener
	http *http.Server
}

// Serve starts the telemetry endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns once it is listening. Close shuts it down.
func Serve(addr string, reg *Registry, tracer *Tracer, health func() error) (*Server, error) {
	return ServeHandler(addr, NewHandler(reg, tracer, health))
}

// ServeHandler starts an HTTP server for an arbitrary handler — typically
// a NewHandler mux extended with extra routes — and returns once it is
// listening.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	srv := &Server{
		ln: ln,
		http: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go srv.http.Serve(ln)
	return srv, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, letting in-flight responses — e.g. the drain
// endpoint's final stats, whose completion is what unblocks a serving
// binary's exit — finish within a short grace period before connections
// are torn down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.http.Shutdown(ctx); err != nil {
		return s.http.Close()
	}
	return nil
}

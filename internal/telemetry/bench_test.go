package telemetry

import "testing"

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

// BenchmarkCounterVecWith measures label resolution — the reason hot paths
// pre-resolve children once at package init instead of calling With inline.
func BenchmarkCounterVecWith(b *testing.B) {
	v := NewRegistry().CounterVec("bench_vec_total", "", "outcome")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("ok").Inc()
	}
}

// Package checkpoint persists run state so a crashed replay can resume
// instead of losing the whole run — the recovery half of Pragma's "respond
// to system failures" reactive management (§3.4.2). It provides a small,
// format-versioned container (magic, version, length, CRC-32C over the
// payload) and a directory Store that writes checkpoints atomically
// (temp file + fsync + rename) and finds the latest valid one, skipping
// truncated or corrupted files.
//
// The package is payload-agnostic: callers serialize their own state
// (internal/core stores its replay accumulators as JSON) and this layer
// guarantees that whatever is read back is exactly what was written, or an
// error — never silently damaged state.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Format constants. A checkpoint file is:
//
//	offset 0:  magic "PRGMCKPT" (8 bytes)
//	offset 8:  version, uint32 little-endian
//	offset 12: payload length, uint64 little-endian
//	offset 20: CRC-32C (Castagnoli) of the payload, uint32 little-endian
//	offset 24: payload
//
// Truncation is caught by the length field, payload damage by the CRC, and
// future incompatible layouts by the version.
const (
	magic      = "PRGMCKPT"
	headerSize = 24
	// Version is the current container format version.
	Version = 1
)

// Sentinel decode errors. All of them mean "this file is not a usable
// checkpoint"; Store.Latest treats any of them as a skip.
var (
	// ErrNotCheckpoint marks data without the checkpoint magic.
	ErrNotCheckpoint = errors.New("checkpoint: not a checkpoint file")
	// ErrVersion marks a container version this code does not understand.
	ErrVersion = errors.New("checkpoint: unsupported format version")
	// ErrTruncated marks a file shorter than its header promises.
	ErrTruncated = errors.New("checkpoint: truncated file")
	// ErrCorrupt marks a payload whose CRC does not match.
	ErrCorrupt = errors.New("checkpoint: payload CRC mismatch")
	// ErrNoCheckpoint is returned by Latest when no valid checkpoint exists.
	ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode wraps a payload in the checkpoint container.
func Encode(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out, magic)
	binary.LittleEndian.PutUint32(out[8:], Version)
	binary.LittleEndian.PutUint64(out[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[20:], crc32.Checksum(payload, castagnoli))
	copy(out[headerSize:], payload)
	return out
}

// Decode validates a checkpoint container and returns its payload.
func Decode(data []byte) ([]byte, error) {
	if len(data) < headerSize || string(data[:8]) != magic {
		return nil, ErrNotCheckpoint
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, v)
	}
	length := binary.LittleEndian.Uint64(data[12:])
	if length != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: header says %d payload bytes, file has %d",
			ErrTruncated, length, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[20:]) {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// Store manages a directory of sequence-numbered checkpoint files.
type Store struct {
	// Dir is the checkpoint directory; Save creates it on demand.
	Dir string
	// Keep bounds how many checkpoint files Save retains (oldest pruned
	// first). 0 means the default of 3; negative keeps everything.
	Keep int
}

// Entry identifies one checkpoint file in a store.
type Entry struct {
	// Seq is the caller-chosen sequence number (a regrid index).
	Seq int
	// Path is the file's location.
	Path string
}

const (
	filePrefix = "ckpt-"
	fileSuffix = ".ckpt"
)

func (s *Store) path(seq int) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%s%08d%s", filePrefix, seq, fileSuffix))
}

// Save atomically writes a checkpoint with the given sequence number: the
// container goes to a temp file in the same directory, is synced, and
// renamed into place, so a crash mid-write can never leave a half-written
// file under the checkpoint name. Older files beyond Keep are pruned.
func (s *Store) Save(seq int, payload []byte) (string, error) {
	start := time.Now()
	dst, err := s.save(seq, payload)
	if err != nil {
		metricWritesFailed.Inc()
		return "", err
	}
	metricWriteSeconds.Observe(time.Since(start).Seconds())
	metricBytesWritten.Add(uint64(headerSize + len(payload)))
	metricWritesOK.Inc()
	return dst, nil
}

func (s *Store) save(seq int, payload []byte) (string, error) {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(s.Dir, ".ckpt-*.tmp")
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(Encode(payload)); err != nil {
		tmp.Close()
		return "", fmt.Errorf("checkpoint: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("checkpoint: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	dst := s.path(seq)
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return "", fmt.Errorf("checkpoint: publish %s: %w", dst, err)
	}
	s.prune()
	return dst, nil
}

// prune removes the oldest files beyond the retention bound. Pruning is
// best-effort: a failure leaves extra files behind, never missing ones.
func (s *Store) prune() {
	keep := s.Keep
	if keep == 0 {
		keep = 3
	}
	if keep < 0 {
		return
	}
	entries, err := s.Entries()
	if err != nil {
		return
	}
	for _, e := range entries[min(keep, len(entries)):] {
		os.Remove(e.Path)
	}
}

// Entries lists the store's checkpoint files, newest sequence first.
// Non-checkpoint files in the directory are ignored; a missing directory
// is an empty store.
func (s *Store) Entries() ([]Entry, error) {
	des, err := os.ReadDir(s.Dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var out []Entry
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix))
		if err != nil {
			continue
		}
		out = append(out, Entry{Seq: seq, Path: filepath.Join(s.Dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out, nil
}

// Load reads and validates one checkpoint file, returning its payload.
func (s *Store) Load(e Entry) ([]byte, error) {
	data, err := os.ReadFile(e.Path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	payload, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, e.Path)
	}
	return payload, nil
}

// Latest returns the newest checkpoint that validates, walking older files
// when newer ones are truncated or corrupted. accept, when non-nil, may
// reject a structurally valid payload (e.g. one recorded for a different
// run configuration), continuing the walk. Returns ErrNoCheckpoint when
// nothing usable exists.
func (s *Store) Latest(accept func(seq int, payload []byte) error) (int, []byte, error) {
	entries, err := s.Entries()
	if err != nil {
		return 0, nil, err
	}
	var lastErr error
	for _, e := range entries {
		payload, err := s.Load(e)
		if err != nil {
			lastErr = err
			continue
		}
		if accept != nil {
			if err := accept(e.Seq, payload); err != nil {
				lastErr = err
				continue
			}
		}
		return e.Seq, payload, nil
	}
	if lastErr != nil {
		return 0, nil, fmt.Errorf("%w (last failure: %v)", ErrNoCheckpoint, lastErr)
	}
	return 0, nil, ErrNoCheckpoint
}

package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at the container decoder: it
// must never panic, and anything it accepts must re-encode to a container
// that decodes to the same payload. This is the parser a resuming run
// trusts with whatever a crash left on disk.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PRGMCKPT"))
	f.Add(Encode(nil))
	f.Add(Encode([]byte(`{"nextIndex":3,"simTime":1.5}`)))
	valid := Encode(bytes.Repeat([]byte{0xA5}, 64))
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated
	flipped := append([]byte(nil), valid...)
	flipped[headerSize] ^= 1 // corrupted payload
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(Encode(payload))
		if err != nil {
			t.Fatalf("accepted payload fails round trip: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatalf("round trip changed payload: %x vs %x", again, payload)
		}
	})
}

package checkpoint

import "github.com/pragma-grid/pragma/internal/telemetry"

// Store-level instrumentation: write latency covers the full atomic path
// (temp file, fsync, rename), so it reflects what a regrid boundary
// actually pays for durability, not just the write syscall.
var (
	metricWriteSeconds = telemetry.Default.Histogram(
		"pragma_checkpoint_write_seconds",
		"Latency of atomically persisting one checkpoint (write+fsync+rename).",
		telemetry.DefBuckets)
	metricBytesWritten = telemetry.Default.Counter(
		"pragma_checkpoint_bytes_written_total",
		"Total checkpoint container bytes written, including headers.")
	metricWrites = telemetry.Default.CounterVec(
		"pragma_checkpoint_writes_total",
		"Checkpoint save attempts by result.",
		"result")

	metricWritesOK     = metricWrites.With("ok")
	metricWritesFailed = metricWrites.With("error")
)

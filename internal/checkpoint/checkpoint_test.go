package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("pragma"), 1000)} {
		got, err := Decode(Encode(payload))
		if err != nil {
			t.Fatalf("decode(encode(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %d bytes in, %d out", len(payload), len(got))
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	valid := Encode([]byte(`{"state":42}`))

	if _, err := Decode([]byte("not a checkpoint at all")); !errors.Is(err, ErrNotCheckpoint) {
		t.Errorf("garbage: err = %v, want ErrNotCheckpoint", err)
	}
	if _, err := Decode(valid[:10]); !errors.Is(err, ErrNotCheckpoint) {
		t.Errorf("short header: err = %v, want ErrNotCheckpoint", err)
	}

	truncated := valid[:len(valid)-3]
	if _, err := Decode(truncated); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: err = %v, want ErrTruncated", err)
	}

	// Flip one payload byte: CRC must catch it.
	corrupt := append([]byte(nil), valid...)
	corrupt[headerSize+2] ^= 0x40
	if _, err := Decode(corrupt); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt payload: err = %v, want ErrCorrupt", err)
	}

	// Unknown version.
	future := append([]byte(nil), valid...)
	future[8] = 99
	if _, err := Decode(future); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: err = %v, want ErrVersion", err)
	}
}

func TestStoreSaveAndLatest(t *testing.T) {
	st := &Store{Dir: filepath.Join(t.TempDir(), "ckpts")}
	for seq, body := range map[int]string{2: "two", 5: "five", 9: "nine"} {
		if _, err := st.Save(seq, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	seq, payload, err := st.Latest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 || string(payload) != "nine" {
		t.Fatalf("latest = (%d, %q), want (9, nine)", seq, payload)
	}
}

func TestStoreLatestSkipsCorruptedAndTruncated(t *testing.T) {
	st := &Store{Dir: t.TempDir()}
	if _, err := st.Save(1, []byte("good-old")); err != nil {
		t.Fatal(err)
	}
	p2, err := st.Save(2, []byte("good-mid"))
	if err != nil {
		t.Fatal(err)
	}
	p3, err := st.Save(3, []byte("good-new"))
	if err != nil {
		t.Fatal(err)
	}

	// Damage the newest (bit flip) and truncate the middle one — the crash
	// scenarios rename-on-publish cannot prevent after the fact.
	data, err := os.ReadFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(p3, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p2, 10); err != nil {
		t.Fatal(err)
	}

	seq, payload, err := st.Latest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || string(payload) != "good-old" {
		t.Fatalf("latest = (%d, %q), want the oldest intact file (1, good-old)", seq, payload)
	}
}

func TestStoreLatestHonorsAccept(t *testing.T) {
	st := &Store{Dir: t.TempDir()}
	for seq := 1; seq <= 3; seq++ {
		if _, err := st.Save(seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	seq, _, err := st.Latest(func(seq int, payload []byte) error {
		if seq == 3 {
			return errors.New("wrong run configuration")
		}
		return nil
	})
	if err != nil || seq != 2 {
		t.Fatalf("latest = (%d, %v), want seq 2 after rejecting 3", seq, err)
	}
}

func TestStoreEmptyAndMissingDir(t *testing.T) {
	st := &Store{Dir: filepath.Join(t.TempDir(), "never-created")}
	if _, _, err := st.Latest(nil); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestStorePruneKeepsNewest(t *testing.T) {
	st := &Store{Dir: t.TempDir(), Keep: 2}
	for seq := 1; seq <= 5; seq++ {
		if _, err := st.Save(seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := st.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 5 || entries[1].Seq != 4 {
		t.Fatalf("after pruning: %+v, want seqs [5 4]", entries)
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	st := &Store{Dir: t.TempDir()}
	if err := os.WriteFile(filepath.Join(st.Dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.Dir, "ckpt-notanumber.ckpt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(7, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	entries, err := st.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Seq != 7 {
		t.Fatalf("entries = %+v, want just seq 7", entries)
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	st := &Store{Dir: t.TempDir()}
	if _, err := st.Save(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(st.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.Name() != "ckpt-00000001.ckpt" {
			t.Fatalf("unexpected leftover %q", de.Name())
		}
	}
}

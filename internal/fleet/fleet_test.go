package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/checkpoint"
	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/sched"
)

// tinyTrace is a deliberately small RM3D trace (16x8x8 base, 2 levels, 16
// snapshots) so fleet tests can push real replays through TCP-connected
// workers under -race in seconds.
var tinyTrace = struct {
	once sync.Once
	tr   *samr.Trace
	err  error
}{}

func testTrace(t testing.TB) *samr.Trace {
	t.Helper()
	tinyTrace.once.Do(func() {
		cfg := rm3d.SmallConfig()
		cfg.BaseDims = [3]int{16, 8, 8}
		cfg.MaxDepth = 2
		cfg.CoarseSteps = 60 // 16 snapshots
		tinyTrace.tr, tinyTrace.err = rm3d.GenerateTrace(cfg)
	})
	if tinyTrace.err != nil {
		t.Fatal(tinyTrace.err)
	}
	return tinyTrace.tr
}

// testMaterializer maps every wire spec onto the tiny trace, honoring the
// checkpoint and regrid-delay fields — shared by workers, router fallback
// and the reference runs, exactly as the production materializer is.
func testMaterializer(t testing.TB) Materializer {
	return func(ws WireSpec) (sched.RunSpec, error) {
		p, err := partition.ByName("G-MISP+SP")
		if err != nil {
			return sched.RunSpec{}, err
		}
		var strat core.Strategy = core.Static{P: p}
		if ws.RegridDelayMS > 0 {
			strat = DelayStrategy(strat, time.Duration(ws.RegridDelayMS)*time.Millisecond)
		}
		return sched.RunSpec{
			Trace:           testTrace(t),
			Strategy:        strat,
			Machine:         cluster.SP2(4),
			NProcs:          4,
			CheckpointDir:   ws.CheckpointDir,
			CheckpointEvery: ws.CheckpointEvery,
			CheckpointKeep:  ws.CheckpointKeep,
			Resume:          ws.Resume,
		}, nil
	}
}

// refResult computes the unfailed single-node reference every fleet run
// must reproduce bit-identically, checkpointing into dir when non-empty.
func refResult(t testing.TB, mat Materializer, ws WireSpec) *core.RunResult {
	t.Helper()
	spec, err := mat(ws)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(spec.Trace, spec.Strategy, core.RunConfig{
		Machine: spec.Machine, NProcs: spec.NProcs,
		CheckpointDir: spec.CheckpointDir, CheckpointEvery: spec.CheckpointEvery,
		CheckpointKeep: spec.CheckpointKeep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// startCenter serves a Message Center on loopback TCP.
func startCenter(t *testing.T, opts ...agents.CenterOption) (*agents.Center, string) {
	t.Helper()
	center := agents.NewCenter(opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go center.Serve(ln)
	return center, ln.Addr().String()
}

// startWorker dials the center over TCP and joins the fleet.
func startWorker(t *testing.T, addr, id string, mat Materializer, slots int) (*Worker, *agents.Client) {
	t.Helper()
	cl, err := agents.Dial(addr,
		agents.WithReconnect(true),
		agents.WithBackoff(5*time.Millisecond, 50*time.Millisecond),
		agents.WithHeartbeat(30*time.Millisecond),
		agents.WithOpTimeout(5*time.Second),
		agents.WithErrorHandler(func(error) {}))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerConfig{
		Port:           cl,
		ID:             id,
		Slots:          slots,
		HeartbeatEvery: 30 * time.Millisecond,
		Materialize:    mat,
	})
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	return w, cl
}

func testRouter(t *testing.T, center *agents.Center, mat Materializer, mut func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Port:             center,
		HeartbeatTimeout: 500 * time.Millisecond,
		DispatchDeadline: time.Second,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		Materialize:      mat,
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.AttachCenter(center)
	t.Cleanup(func() { r.Close() })
	return r
}

// waitReachable blocks until the router sees n placeable workers.
func waitReachable(t *testing.T, r *Router, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.Stats().Reachable < n {
		if time.Now().After(deadline) {
			t.Fatalf("router never saw %d reachable workers (stats %+v)", n, r.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func sameRunResult(t *testing.T, label string, got, want *core.RunResult) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no result", label)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: result diverged from the unfailed reference\ngot  %+v\nwant %+v", label, got, want)
	}
}

// TestFleetEndToEnd shards several runs across two TCP-connected workers
// and requires every one to complete with the reference result.
func TestFleetEndToEnd(t *testing.T) {
	mat := testMaterializer(t)
	center, addr := startCenter(t)
	r := testRouter(t, center, mat, nil)
	for i := 0; i < 2; i++ {
		w, cl := startWorker(t, addr, fmt.Sprintf("w%d", i), mat, 2)
		t.Cleanup(func() { cl.Close() })
		t.Cleanup(func() { w.Close() })
	}
	waitReachable(t, r, 2)

	want := refResult(t, mat, WireSpec{})
	const n = 4
	ids := make([]string, n)
	for i := range ids {
		st, err := r.Submit(SubmitRequest{Tenant: "acme", Spec: WireSpec{}})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, id := range ids {
		st, err := r.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("run %s: state %s (err %q)", id, st.State, st.Error)
		}
		if st.Placement == "" || st.Placement == "local" {
			t.Fatalf("run %s: placed %q, want a remote worker", id, st.Placement)
		}
		sameRunResult(t, id, st.Result, want)
	}
	if st := r.Stats(); st.Done != n || st.LocalFallbacks != 0 {
		t.Fatalf("stats %+v, want %d done and no local fallbacks", st, n)
	}
}

// TestFleetFailoverBitIdentical is the robustness core: a worker is killed
// mid-run (link torn down, no goodbye — the in-process equivalent of
// SIGKILL) after it has checkpointed, and the run must complete on the
// surviving worker with a final result AND final checkpoint bit-identical
// to an unfailed single-node reference run.
func TestFleetFailoverBitIdentical(t *testing.T) {
	mat := testMaterializer(t)
	center, addr := startCenter(t, agents.WithHeartbeatTimeout(2*time.Second))
	r := testRouter(t, center, mat, nil)

	workers := map[string]*Worker{}
	clients := map[string]*agents.Client{}
	for _, id := range []string{"w0", "w1"} {
		w, cl := startWorker(t, addr, id, mat, 1)
		workers[id], clients[id] = w, cl
		t.Cleanup(func() { cl.Close() })
	}
	waitReachable(t, r, 2)

	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "fleet")
	refDir := filepath.Join(dir, "ref")
	ws := WireSpec{
		CheckpointDir:   ckptDir,
		CheckpointEvery: 1,
		CheckpointKeep:  -1, // retain all, for the byte-level comparison
		RegridDelayMS:   25, // keep the run in flight long enough to kill
	}
	failoversBefore := metricFailovers.Value()

	st, err := r.Submit(SubmitRequest{Tenant: "acme", Spec: ws})
	if err != nil {
		t.Fatal(err)
	}

	// Find where it landed, then wait for its first checkpoint to exist so
	// the failover genuinely resumes rather than restarting from scratch.
	var victim string
	deadline := time.Now().Add(30 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			t.Fatal("run never started on a worker")
		}
		if cur, ok := r.Status(st.ID); ok && cur.State == StateRunning && cur.Placement != "" {
			victim = cur.Placement
		}
		time.Sleep(5 * time.Millisecond)
	}
	store := &checkpoint.Store{Dir: ckptDir, Keep: -1}
	for {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint ever appeared")
		}
		if entries, _ := store.Entries(); len(entries) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the victim: tear its link down with no goodbye. The center's
	// disconnect hook must evict it and the router must resume the run on
	// the survivor from the latest CRC-verified checkpoint.
	evictionsBefore := metricEvictions.Value()
	clients[victim].Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := r.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("state %s (err %q), want done", final.State, final.Error)
	}
	if final.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", final.Failovers)
	}
	if final.Placement == victim {
		t.Fatalf("run finished on the killed worker %s", victim)
	}
	if got := metricFailovers.Value(); got <= failoversBefore {
		t.Fatalf("pragma_fleet_failovers_total = %d, want > %d", got, failoversBefore)
	}
	if got := metricEvictions.Value(); got <= evictionsBefore {
		t.Fatalf("pragma_fleet_evictions_total = %d, want > %d", got, evictionsBefore)
	}

	// The killed worker's zombie pool may still be running; stop it so its
	// writes cannot land after the comparison below. (Its checkpoints are
	// deterministic duplicates, so even before this they were harmless.)
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	if err := workers[victim].Drain(dctx); err != nil {
		t.Fatalf("draining zombie: %v", err)
	}

	// Bit-identical to the unfailed single-node reference: both the run
	// result and the final checkpoint payload.
	refWS := ws
	refWS.CheckpointDir = refDir
	want := refResult(t, mat, refWS)
	sameRunResult(t, "failed-over run", final.Result, want)

	gotSeq, gotPayload, err := store.Latest(nil)
	if err != nil {
		t.Fatal(err)
	}
	refStore := &checkpoint.Store{Dir: refDir, Keep: -1}
	wantSeq, wantPayload, err := refStore.Latest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != wantSeq {
		t.Fatalf("final checkpoint seq = %d, reference = %d", gotSeq, wantSeq)
	}
	if !bytes.Equal(gotPayload, wantPayload) {
		t.Fatalf("final checkpoint payload diverged from the unfailed reference (%d vs %d bytes)",
			len(gotPayload), len(wantPayload))
	}
}

// TestFleetLocalFallback: with zero workers reachable the router must
// degrade to local execution, not fail the run.
func TestFleetLocalFallback(t *testing.T) {
	mat := testMaterializer(t)
	center, _ := startCenter(t)
	r := testRouter(t, center, mat, func(c *Config) {
		c.PlaceAttempts = 1
	})
	st, err := r.Submit(SubmitRequest{Tenant: "acme", Spec: WireSpec{}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := r.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("state %s (err %q), want done", final.State, final.Error)
	}
	if final.Placement != "local" {
		t.Fatalf("placement %q, want local", final.Placement)
	}
	sameRunResult(t, "local fallback", final.Result, refResult(t, mat, WireSpec{}))
	if st := r.Stats(); st.LocalFallbacks != 1 {
		t.Fatalf("LocalFallbacks = %d, want 1", st.LocalFallbacks)
	}
}

// TestFleetBreaker: a worker that advertises capacity but never answers
// dispatches must trip its circuit breaker, and the run must still
// complete via the fallback path.
func TestFleetBreaker(t *testing.T) {
	mat := testMaterializer(t)
	center, _ := startCenter(t)

	// A liar worker: hellos and heartbeats, never acks.
	liarPort := WorkerPort("liar")
	inbox, err := center.Register(liarPort, 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { center.Unregister(liarPort) })
	go func() {
		for range inbox { // swallow dispatches silently
		}
	}()

	r := testRouter(t, center, mat, func(c *Config) {
		c.DispatchDeadline = 50 * time.Millisecond
		c.BreakerThreshold = 2
	})
	if err := send(center, liarPort, RouterPort, KindHello, helloMsg{ID: "liar", Slots: 4}); err != nil {
		t.Fatal(err)
	}
	hbStop := make(chan struct{})
	t.Cleanup(func() { close(hbStop) })
	go func() {
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ticker.C:
				send(center, liarPort, RouterPort, KindHeartbeat,
					heartbeatMsg{ID: "liar", CPU: 1, Slots: 4})
			}
		}
	}()
	waitReachable(t, r, 1)

	breakerBefore := metricBreakerOpens.Value()
	timeoutBefore := dispatchTimeout.Value()
	st, err := r.Submit(SubmitRequest{Tenant: "acme", Spec: WireSpec{}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := r.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("state %s (err %q), want done", final.State, final.Error)
	}
	if final.Placement != "local" {
		t.Fatalf("placement %q, want local (the liar never admits)", final.Placement)
	}
	if got := dispatchTimeout.Value(); got <= timeoutBefore {
		t.Fatalf("dispatch timeouts = %d, want > %d", got, timeoutBefore)
	}
	if got := metricBreakerOpens.Value(); got <= breakerBefore {
		t.Fatalf("breaker opens = %d, want > %d", got, breakerBefore)
	}
}

// TestFleetDrain: draining the fleet mid-run checkpoints in-flight work on
// the workers and records it drained-resumable at the router.
func TestFleetDrain(t *testing.T) {
	mat := testMaterializer(t)
	center, addr := startCenter(t)
	r := testRouter(t, center, mat, nil)
	w, cl := startWorker(t, addr, "w0", mat, 1)
	t.Cleanup(func() { cl.Close() })
	t.Cleanup(func() { w.Close() })
	waitReachable(t, r, 1)

	ws := WireSpec{
		CheckpointDir:   filepath.Join(t.TempDir(), "ckpt"),
		CheckpointEvery: 1,
		RegridDelayMS:   25,
	}
	st, err := r.Submit(SubmitRequest{Tenant: "acme", Spec: ws})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		if cur, ok := r.Status(st.ID); ok && cur.State == StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	final, ok := r.Status(st.ID)
	if !ok {
		t.Fatal("run record vanished")
	}
	if final.State != StateDrained || !final.Resumable {
		t.Fatalf("state %s resumable=%v, want drained+resumable", final.State, final.Resumable)
	}
	if final.CheckpointDir != ws.CheckpointDir {
		t.Fatalf("drained checkpoint dir %q, want %q", final.CheckpointDir, ws.CheckpointDir)
	}
	if _, err := r.Submit(SubmitRequest{Tenant: "acme", Spec: WireSpec{}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
	if !r.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	// The worker was asked to drain too.
	wdl := time.Now().Add(10 * time.Second)
	for !w.Draining() {
		if time.Now().After(wdl) {
			t.Fatal("worker never saw the drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the checkpoints are real: a resumed local run completes from them.
	res := refResult(t, mat, WireSpec{}) // plain reference, no delay
	resumed := ws
	resumed.Resume = true
	resumed.RegridDelayMS = 0
	spec, err := mat(resumed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(spec.Trace, spec.Strategy, core.RunConfig{
		Machine: spec.Machine, NProcs: spec.NProcs,
		CheckpointDir: spec.CheckpointDir, CheckpointEvery: spec.CheckpointEvery,
		Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameRunResult(t, "resumed after drain", got, res)
}

// TestSpecFromValues exercises the HTTP submit parameter parsing.
func TestSpecFromValues(t *testing.T) {
	v := map[string][]string{
		"trace":            {"small"},
		"strategy":         {"adaptive"},
		"procs":            {"4"},
		"checkpoint":       {"/tmp/x"},
		"checkpoint-every": {"2"},
		"regrid-delay-ms":  {"10"},
		"resume":           {"true"},
	}
	ws, err := SpecFromValues(v)
	if err != nil {
		t.Fatal(err)
	}
	want := WireSpec{
		Trace: "small", Strategy: "adaptive", Procs: 4,
		CheckpointDir: "/tmp/x", CheckpointEvery: 2, RegridDelayMS: 10, Resume: true,
	}
	if ws != want {
		t.Fatalf("got %+v want %+v", ws, want)
	}
	if _, err := SpecFromValues(map[string][]string{"trace": {"x"}, "scenario": {"y"}}); err == nil {
		t.Fatal("trace+scenario accepted")
	}
	if _, err := SpecFromValues(map[string][]string{"procs": {"many"}}); err == nil {
		t.Fatal("bad procs accepted")
	}
}

func TestSafePathComponent(t *testing.T) {
	cases := map[string]string{
		"fleet-000001": "fleet-000001",
		"../../etc":    "______etc",
		"":             "run",
		"a b/c":        "a_b_c",
	}
	for in, want := range cases {
		if got := safePathComponent(in); got != want {
			t.Errorf("safePathComponent(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMain keeps checkpoint temp dirs from leaking on abnormal exits.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

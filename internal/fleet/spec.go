package fleet

import (
	"fmt"
	"sync"
	"time"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/scenario"
	"github.com/pragma-grid/pragma/internal/sched"
)

// WireSpec is a run description that can cross the control network: names
// and numbers only, no pointers. Router and workers materialize it into an
// executable sched.RunSpec independently with the same Materializer, so a
// run dispatched remotely, failed over to a survivor, or degraded to local
// execution computes the identical result. CheckpointDir must be on
// storage every fleet member can reach — it is what failover resumes from.
type WireSpec struct {
	// Trace names a built-in adaptation trace ("small" or "paper");
	// Scenario, when set instead, is an internal/scenario spec string.
	Trace    string `json:"trace,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	// Seed overrides the scenario spec's seed when SeedSet is true.
	Seed    int64 `json:"seed,omitempty"`
	SeedSet bool  `json:"seedSet,omitempty"`
	// Strategy is adaptive|system-sensitive|proactive or a partitioner
	// name ("" = adaptive); Procs the processor count ("0" = 8).
	Strategy string `json:"strategy,omitempty"`
	Procs    int    `json:"procs,omitempty"`
	// Checkpoint configuration; Resume continues from the latest valid
	// checkpoint in CheckpointDir (the failover path sets it).
	CheckpointDir   string `json:"checkpointDir,omitempty"`
	CheckpointEvery int    `json:"checkpointEvery,omitempty"`
	CheckpointKeep  int    `json:"checkpointKeep,omitempty"`
	Resume          bool   `json:"resume,omitempty"`
	// RegridDelayMS pauses every regrid by this many milliseconds. It is a
	// failure-rehearsal knob: the fleet smoke test uses it to keep runs in
	// flight long enough to SIGKILL a worker mid-run.
	RegridDelayMS int `json:"regridDelayMs,omitempty"`
	// Weight is the tenant's fair-share weight (0 = keep current /
	// default). It travels with the dispatch so a run routed to a worker —
	// or failed over to a survivor — keeps its proportional share in the
	// worker's local scheduler.
	Weight float64 `json:"weight,omitempty"`
}

// Materializer turns a WireSpec into an executable run spec. Workers and
// the router's local-fallback path share one, so every placement of a run
// computes the same result.
type Materializer func(ws WireSpec) (sched.RunSpec, error)

// DefaultMaterializer builds the standard materializer: built-in RM3D
// traces and scenario specs, cached per process so repeated dispatches of
// the same trace do not regenerate it, with a fresh strategy instance per
// run (strategies carry per-run state).
func DefaultMaterializer() Materializer {
	var mu sync.Mutex
	traces := map[string]*samr.Trace{}
	getTrace := func(key string, gen func() (*samr.Trace, error)) (*samr.Trace, error) {
		mu.Lock()
		defer mu.Unlock()
		if tr, ok := traces[key]; ok {
			return tr, nil
		}
		tr, err := gen()
		if err != nil {
			return nil, err
		}
		traces[key] = tr
		return tr, nil
	}
	return func(ws WireSpec) (sched.RunSpec, error) {
		var tr *samr.Trace
		var workModel func(idx int) samr.WorkModel
		var err error
		if ws.Scenario != "" {
			spec, perr := scenario.ParseSpec(ws.Scenario)
			if perr != nil {
				return sched.RunSpec{}, perr
			}
			if ws.SeedSet {
				spec.Seed = ws.Seed
			}
			key := fmt.Sprintf("scenario\x00%s\x00%d", ws.Scenario, spec.Seed)
			tr, err = getTrace(key, spec.Generate)
			workModel = spec.WorkModel
		} else {
			var cfg rm3d.Config
			switch ws.Trace {
			case "", "small":
				cfg = rm3d.SmallConfig()
			case "paper":
				cfg = rm3d.DefaultConfig()
			default:
				return sched.RunSpec{}, fmt.Errorf("fleet: unknown trace %q (small|paper)", ws.Trace)
			}
			name := ws.Trace
			if name == "" {
				name = "small"
			}
			tr, err = getTrace(name, func() (*samr.Trace, error) { return rm3d.GenerateTrace(cfg) })
		}
		if err != nil {
			return sched.RunSpec{}, err
		}
		strat, err := strategyByName(ws.Strategy)
		if err != nil {
			return sched.RunSpec{}, err
		}
		if ws.RegridDelayMS > 0 {
			strat = DelayStrategy(strat, time.Duration(ws.RegridDelayMS)*time.Millisecond)
		}
		procs := ws.Procs
		if procs == 0 {
			procs = 8
		}
		if procs < 1 {
			return sched.RunSpec{}, fmt.Errorf("fleet: bad procs %d", procs)
		}
		return sched.RunSpec{
			Trace:           tr,
			Strategy:        strat,
			Machine:         cluster.SP2(procs),
			NProcs:          procs,
			WorkModel:       workModel,
			CheckpointDir:   ws.CheckpointDir,
			CheckpointEvery: ws.CheckpointEvery,
			CheckpointKeep:  ws.CheckpointKeep,
			Resume:          ws.Resume,
		}, nil
	}
}

// strategyByName resolves a strategy the same way pragma-node's replay
// mode does, returning a fresh instance per call.
func strategyByName(name string) (core.Strategy, error) {
	switch name {
	case "", "adaptive":
		return core.Adaptive{ImbalanceGuard: 20}, nil
	case "system-sensitive":
		return &core.SystemSensitive{}, nil
	case "proactive":
		return &core.Proactive{}, nil
	default:
		p, err := partition.ByName(name)
		if err != nil {
			return nil, err
		}
		return core.Static{P: p}, nil
	}
}

// delayStrategy wraps a strategy with a fixed pause per Assign call,
// passing checkpoint state through to the inner strategy so resume
// semantics are unchanged.
type delayStrategy struct {
	inner core.Strategy
	d     time.Duration
}

// DelayStrategy returns strat slowed by d per regrid — the rehearsal hook
// behind WireSpec.RegridDelayMS. Checkpointing passes through.
func DelayStrategy(strat core.Strategy, d time.Duration) core.Strategy {
	return delayStrategy{inner: strat, d: d}
}

func (s delayStrategy) Name() string { return s.inner.Name() }

func (s delayStrategy) Assign(ctx *core.StepContext) (*partition.Assignment, string, error) {
	time.Sleep(s.d)
	return s.inner.Assign(ctx)
}

func (s delayStrategy) CheckpointState() ([]byte, error) {
	if cs, ok := s.inner.(core.CheckpointableStrategy); ok {
		return cs.CheckpointState()
	}
	return nil, nil
}

func (s delayStrategy) RestoreState(data []byte) error {
	if cs, ok := s.inner.(core.CheckpointableStrategy); ok {
		return cs.RestoreState(data)
	}
	return nil
}

package fleet

import "github.com/pragma-grid/pragma/internal/telemetry"

// Fleet instrumentation. Placement verdicts and failovers are the signals
// an operator watches during an incident: dispatch verdicts say whether
// the fleet is accepting work, evictions+failovers say it is losing
// members, and local fallbacks say the router is riding out a partition on
// its own. All counters are far off the run hot path.
var (
	metricWorkers = telemetry.Default.Gauge(
		"pragma_fleet_workers",
		"Workers currently registered and not evicted.")
	metricReachableWorkers = telemetry.Default.Gauge(
		"pragma_fleet_reachable_workers",
		"Workers with a fresh heartbeat, a closed breaker and free slots.")
	metricDispatches = telemetry.Default.CounterVec(
		"pragma_fleet_dispatches_total",
		"Dispatch attempts by verdict: ok, rejected (worker refused), timeout (ack deadline), send_error.",
		"verdict")
	metricRetries = telemetry.Default.Counter(
		"pragma_fleet_dispatch_retries_total",
		"Dispatch attempts beyond each placement's first.")
	metricFailovers = telemetry.Default.Counter(
		"pragma_fleet_failovers_total",
		"Runs re-placed after their worker was lost mid-run.")
	metricEvictions = telemetry.Default.Counter(
		"pragma_fleet_evictions_total",
		"Workers evicted for heartbeat silence or link teardown.")
	metricLocalFallbacks = telemetry.Default.Counter(
		"pragma_fleet_local_fallbacks_total",
		"Runs degraded to local in-process execution because no worker was placeable.")
	metricBreakerOpens = telemetry.Default.Counter(
		"pragma_fleet_breaker_opens_total",
		"Per-worker circuit breakers tripped open by consecutive dispatch failures.")
	metricHeartbeats = telemetry.Default.Counter(
		"pragma_fleet_heartbeats_total",
		"Worker capacity heartbeats absorbed by the router.")
	metricRunsTotal = telemetry.Default.CounterVec(
		"pragma_fleet_runs_total",
		"Fleet runs reaching a terminal state, by outcome.",
		"outcome")
	metricPlacementSeconds = telemetry.Default.Histogram(
		"pragma_fleet_placement_seconds",
		"Wall-clock time from submission to a successful placement (remote ack or local admission).",
		[]float64{.001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30})

	dispatchOK       = metricDispatches.With("ok")
	dispatchRejected = metricDispatches.With("rejected")
	dispatchTimeout  = metricDispatches.With("timeout")
	dispatchSendErr  = metricDispatches.With("send_error")
)

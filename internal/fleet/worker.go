package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/monitor"
	"github.com/pragma-grid/pragma/internal/sched"
)

// WorkerConfig sizes a fleet Worker.
type WorkerConfig struct {
	// Port is the worker's control-network access — typically an
	// agents.Client dialed at the broker (required).
	Port agents.Port
	// ID is the worker's fleet-wide identity (required). Its mailbox is
	// WorkerPort(ID).
	ID string

	// Slots is the local run-pool size (default 2).
	Slots int
	// HeartbeatEvery paces capacity heartbeats (default 1s). Every tenth
	// heartbeat is preceded by a re-hello, so a worker the router evicted
	// during a partition re-introduces itself once the link heals.
	HeartbeatEvery time.Duration
	// MemoryMB and BandwidthMBps are the advertised static resources — the
	// non-CPU terms of the Fig. 4 capacity formula (defaults 4096, 100).
	MemoryMB      float64
	BandwidthMBps float64

	// Materialize turns dispatched wire specs into executable runs
	// (default DefaultMaterializer()).
	Materialize Materializer
	// OnError receives asynchronous failures; nil discards.
	OnError func(error)
}

func (c *WorkerConfig) fill() {
	if c.Slots <= 0 {
		c.Slots = 2
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.MemoryMB <= 0 {
		c.MemoryMB = 4096
	}
	if c.BandwidthMBps <= 0 {
		c.BandwidthMBps = 100
	}
	if c.Materialize == nil {
		c.Materialize = DefaultMaterializer()
	}
}

// Worker executes the fleet runs dispatched to it by the Router: it
// advertises forecast capacity in heartbeats, admits dispatches into a
// local sched pool, and reports each run's terminal state back. Create
// with NewWorker; stop with Drain or Close.
type Worker struct {
	cfg      WorkerConfig
	port     agents.Port
	mailbox  string
	pool     *sched.Scheduler
	forecast *monitor.AvailabilityForecaster

	mu       sync.Mutex
	attempts map[string]int    // fleet run ID -> attempt being executed here
	local    map[string]string // fleet run ID -> local pool run ID
	draining bool

	gone    chan struct{} // closed when the inbox closes (link torn down)
	stopped chan struct{} // closed once a drain completes
	stopO   sync.Once
	wg      sync.WaitGroup
}

// NewWorker registers the worker's mailbox, announces it to the router,
// and starts its receive and heartbeat loops.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg.fill()
	if cfg.Port == nil || cfg.ID == "" {
		return nil, fmt.Errorf("fleet: worker needs a Port and an ID")
	}
	mailbox := WorkerPort(cfg.ID)
	inbox, err := cfg.Port.Register(mailbox, 256)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	w := &Worker{
		cfg:      cfg,
		port:     cfg.Port,
		mailbox:  mailbox,
		pool:     sched.New(sched.Config{Workers: cfg.Slots}),
		forecast: monitor.NewAvailabilityForecaster(),
		attempts: make(map[string]int),
		local:    make(map[string]string),
		gone:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	if err := w.hello(); err != nil {
		cfg.Port.Unregister(mailbox)
		return nil, err
	}
	w.wg.Add(2)
	go w.recvLoop(inbox)
	go w.heartbeatLoop()
	return w, nil
}

func (w *Worker) reportErr(err error) {
	if w.cfg.OnError != nil {
		w.cfg.OnError(err)
	}
}

func (w *Worker) hello() error {
	return send(w.port, w.mailbox, RouterPort, KindHello, helloMsg{
		ID:            w.cfg.ID,
		Slots:         w.cfg.Slots,
		MemoryMB:      w.cfg.MemoryMB,
		BandwidthMBps: w.cfg.BandwidthMBps,
	})
}

// heartbeatLoop advertises forecast capacity until the worker stops or its
// link tears down. Utilization samples feed the availability forecaster,
// so the advertised CPU figure is the *predicted* next availability.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.cfg.HeartbeatEvery)
	defer ticker.Stop()
	seq := 0
	for {
		select {
		case <-w.stopped:
			return
		case <-w.gone:
			return
		case <-ticker.C:
		}
		seq++
		if seq%10 == 0 {
			if err := w.hello(); err != nil {
				w.reportErr(fmt.Errorf("fleet: worker %s re-hello: %w", w.cfg.ID, err))
			}
		}
		st := w.pool.Stats()
		active := st.Active + st.QueueDepth
		w.forecast.Observe(float64(active) / float64(w.cfg.Slots))
		hb := heartbeatMsg{
			ID:            w.cfg.ID,
			Seq:           seq,
			CPU:           w.forecast.Available(),
			Active:        active,
			Slots:         w.cfg.Slots,
			MemoryMB:      w.cfg.MemoryMB,
			BandwidthMBps: w.cfg.BandwidthMBps,
		}
		if err := send(w.port, w.mailbox, RouterPort, KindHeartbeat, hb); err != nil {
			w.reportErr(fmt.Errorf("fleet: worker %s heartbeat: %w", w.cfg.ID, err))
		}
	}
}

// recvLoop consumes the worker mailbox until the port closes.
func (w *Worker) recvLoop(inbox <-chan agents.Message) {
	defer w.wg.Done()
	defer close(w.gone)
	for m := range inbox {
		switch m.Kind {
		case KindDispatch:
			var d dispatchMsg
			if err := agents.Decode(m, &d); err != nil {
				w.reportErr(fmt.Errorf("fleet: worker %s bad dispatch: %w", w.cfg.ID, err))
				continue
			}
			w.handleDispatch(d)
		case KindDrain:
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				if err := w.Drain(context.Background()); err != nil {
					w.reportErr(fmt.Errorf("fleet: worker %s drain: %w", w.cfg.ID, err))
				}
			}()
		}
	}
}

// handleDispatch admits one placement into the local pool and acks the
// verdict. On admission a watcher goroutine reports the terminal state.
func (w *Worker) handleDispatch(d dispatchMsg) {
	ack := func(errText string) {
		msg := ackMsg{RunID: d.RunID, Attempt: d.Attempt, Err: errText}
		if err := send(w.port, w.mailbox, RouterPort, KindAck, msg); err != nil {
			w.reportErr(fmt.Errorf("fleet: worker %s ack %s: %w", w.cfg.ID, d.RunID, err))
		}
	}
	w.mu.Lock()
	if w.draining {
		w.mu.Unlock()
		ack("worker draining")
		return
	}
	if _, active := w.attempts[d.RunID]; active {
		// A superseded attempt of this run is still executing here; running
		// it twice in one pool would double-write its checkpoint store.
		w.mu.Unlock()
		ack("run already active on this worker")
		return
	}
	w.mu.Unlock()

	spec, err := w.cfg.Materialize(d.Spec)
	if err != nil {
		ack(fmt.Sprintf("materialize: %v", err))
		return
	}
	st, err := w.pool.Submit(sched.SubmitRequest{Tenant: d.Tenant, Weight: d.Spec.Weight, Spec: spec})
	if err != nil {
		ack(err.Error())
		return
	}
	w.mu.Lock()
	w.attempts[d.RunID] = d.Attempt
	w.local[d.RunID] = st.ID
	w.mu.Unlock()
	ack("")

	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		final, err := w.pool.Wait(context.Background(), st.ID)
		w.mu.Lock()
		delete(w.attempts, d.RunID)
		delete(w.local, d.RunID)
		w.mu.Unlock()
		res := resultMsg{RunID: d.RunID, Attempt: d.Attempt}
		if err != nil {
			res.State = string(sched.StateFailed)
			res.Err = err.Error()
		} else {
			res.State = string(final.State)
			res.Err = final.Error
			res.Resumable = final.Resumable
			res.Result = final.Result
		}
		if err := send(w.port, w.mailbox, RouterPort, KindResult, res); err != nil {
			w.reportErr(fmt.Errorf("fleet: worker %s result %s: %w", w.cfg.ID, d.RunID, err))
		}
	}()
}

// Active reports the pool's queued-plus-running run count.
func (w *Worker) Active() int {
	st := w.pool.Stats()
	return st.Active + st.QueueDepth
}

// Draining reports whether the worker has begun draining — its /readyz
// signal.
func (w *Worker) Draining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// Stopped returns a channel closed once a drain completes — however it was
// initiated (Drain, Close, or a router KindDrain). Serving binaries select
// on it to exit after a remote drain.
func (w *Worker) Stopped() <-chan struct{} { return w.stopped }

// Drain gracefully stops the worker: the local pool drains (in-flight runs
// checkpoint at their next regrid boundary and report drained-resumable to
// the router through their watchers), then the worker says goodbye.
// Idempotent; concurrent calls wait for the same drain.
func (w *Worker) Drain(ctx context.Context) error {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
	if err := w.pool.Drain(ctx); err != nil {
		return err
	}
	w.stopO.Do(func() {
		if err := send(w.port, w.mailbox, RouterPort, KindBye, byeMsg{ID: w.cfg.ID}); err != nil {
			w.reportErr(fmt.Errorf("fleet: worker %s bye: %w", w.cfg.ID, err))
		}
		close(w.stopped)
	})
	return nil
}

// Close drains with no deadline, releases the mailbox and waits for the
// worker's goroutines (result watchers included) to finish.
func (w *Worker) Close() error {
	err := w.Drain(context.Background())
	w.port.Unregister(w.mailbox)
	w.wg.Wait()
	return err
}

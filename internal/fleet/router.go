package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/monitor"
	"github.com/pragma-grid/pragma/internal/sched"
	"github.com/pragma-grid/pragma/internal/stream"
)

// Admission errors. Test with errors.Is.
var (
	// ErrDraining means the router no longer admits work.
	ErrDraining = errors.New("fleet: draining, not admitting")
	// ErrSaturated means too many runs are already in flight fleet-wide.
	ErrSaturated = errors.New("fleet: saturated, too many runs in flight")
)

// Config sizes a Router.
type Config struct {
	// Port is the control-network access the router sends and receives
	// on — the broker process passes its own Center (required).
	Port agents.Port

	// HeartbeatTimeout evicts workers silent this long (default 5s). The
	// eviction scan runs at a quarter of it.
	HeartbeatTimeout time.Duration
	// DispatchDeadline bounds each dispatch RPC: a worker that does not
	// acknowledge within it is treated as failed (default 2s).
	DispatchDeadline time.Duration
	// PlaceAttempts bounds dispatch attempts per placement round before
	// the router degrades the run to local execution (default 3).
	PlaceAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// dispatch attempts (defaults 25ms, 500ms); a uniform jitter of up to
	// half the current backoff is added so a thundering herd of retries
	// spreads out.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive dispatch failures open a worker's
	// circuit breaker (default 3); BreakerCooldown is how long it stays
	// open before the worker is probed again (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxFailovers bounds how many times one run may be re-placed after
	// worker loss before falling back to local execution (default 3).
	MaxFailovers int

	// InflightLimit bounds non-terminal runs fleet-wide (default 1024).
	InflightLimit int
	// KeepFinished bounds retained terminal run records (default 1024).
	KeepFinished int

	// LocalWorkers sizes the in-process fallback pool used when no worker
	// is placeable (default 1).
	LocalWorkers int
	// Materialize turns wire specs into executable specs for the local
	// fallback path (default DefaultMaterializer()).
	Materialize Materializer
	// Weights parameterize the Fig. 4 relative-capacity formula used for
	// placement (zero value = monitor.DefaultWeights()).
	Weights monitor.Weights
	// Seed seeds the retry-jitter RNG (0 = 1), for reproducible schedules
	// in tests.
	Seed int64
	// OnError receives asynchronous failures (send errors, late frames);
	// it runs on router goroutines and must not block. nil discards.
	OnError func(error)
	// Events, when non-nil, receives a stream.Event for every fleet run
	// state transition — admission, placement (running), failover
	// re-queueing, and the terminal record on the result path. Publishing
	// never blocks; slow subscribers drop.
	Events *stream.Hub
}

func (c *Config) fill() {
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.DispatchDeadline <= 0 {
		c.DispatchDeadline = 2 * time.Second
	}
	if c.PlaceAttempts <= 0 {
		c.PlaceAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.MaxFailovers <= 0 {
		c.MaxFailovers = 3
	}
	if c.InflightLimit <= 0 {
		c.InflightLimit = 1024
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = 1024
	}
	if c.LocalWorkers <= 0 {
		c.LocalWorkers = 1
	}
	if c.Materialize == nil {
		c.Materialize = DefaultMaterializer()
	}
	if c.Weights == (monitor.Weights{}) {
		c.Weights = monitor.DefaultWeights()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// State is a fleet run's lifecycle phase.
type State string

// Run states. Queued covers admission through placement (including
// re-placement during failover); the terminal states mirror sched's.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateDrained   State = "drained"
	StateCancelled State = "cancelled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateDrained || s == StateCancelled
}

// RunStatus is the externally visible snapshot of one fleet run.
type RunStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	State    State  `json:"state"`
	// Placement is the executing worker's identity, or "local" when the
	// run degraded to in-process execution.
	Placement string `json:"placement,omitempty"`
	// Attempt counts placement attempts so far; Failovers how many times
	// the run moved because its worker was lost.
	Attempt   int `json:"attempt,omitempty"`
	Failovers int `json:"failovers,omitempty"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`

	Error         string          `json:"error,omitempty"`
	Resumable     bool            `json:"resumable,omitempty"`
	CheckpointDir string          `json:"checkpointDir,omitempty"`
	Result        *core.RunResult `json:"result,omitempty"`
}

// WorkerInfo is the router's view of one worker, for /sched/fleet.
type WorkerInfo struct {
	ID            string    `json:"id"`
	Slots         int       `json:"slots"`
	Active        int       `json:"active"`
	CPU           float64   `json:"cpu"`
	LastHeartbeat time.Time `json:"lastHeartbeat"`
	BreakerOpen   bool      `json:"breakerOpen,omitempty"`
	Evicted       bool      `json:"evicted,omitempty"`
	Draining      bool      `json:"draining,omitempty"`
}

// Stats is a point-in-time aggregate view of the router.
type Stats struct {
	Workers   int  `json:"workers"`
	Reachable int  `json:"reachable"`
	Draining  bool `json:"draining"`

	Submitted int `json:"submitted"`
	Active    int `json:"active"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Drained   int `json:"drained"`
	Cancelled int `json:"cancelled"`

	Failovers      int `json:"failovers"`
	Evictions      int `json:"evictions"`
	LocalFallbacks int `json:"localFallbacks"`
}

// workerState is the router's record of one worker.
type workerState struct {
	id       string
	port     string
	slots    int
	reported int // queued+running per the latest heartbeat
	inflight int // dispatches the router has in flight or acked on it
	reading  monitor.Reading
	lastBeat time.Time

	failures  int // consecutive dispatch failures (breaker input)
	openUntil time.Time
	evicted   bool
	draining  bool
}

// run is the router's record of one fleet run.
type run struct {
	seq      int
	id       string
	tenant   string
	priority int
	spec     WireSpec

	state     State
	placement string
	attempt   int
	failovers int
	started   bool // a worker (or the local pool) accepted it at least once

	submitted time.Time
	startedAt time.Time
	finished  time.Time
	err       string
	resumable bool
	result    *core.RunResult
	done      chan struct{}
	doneO     sync.Once
}

func (r *run) status() RunStatus {
	st := RunStatus{
		ID:        r.id,
		Tenant:    r.tenant,
		Priority:  r.priority,
		State:     r.state,
		Placement: r.placement,
		Attempt:   r.attempt,
		Failovers: r.failovers,
		Submitted: r.submitted,
		Started:   r.startedAt,
		Finished:  r.finished,
		Error:     r.err,
	}
	if r.state == StateDrained {
		st.Resumable = r.resumable
		st.CheckpointDir = r.spec.CheckpointDir
	}
	if r.state == StateDone {
		st.Result = r.result
	}
	return st
}

// SubmitRequest is one fleet admission attempt.
type SubmitRequest struct {
	Tenant   string
	Priority int
	Spec     WireSpec
}

// Router shards runs across fleet workers. Create with NewRouter; stop
// with Drain (graceful) or Close.
type Router struct {
	cfg  Config
	port agents.Port

	mu      sync.Mutex
	workers map[string]*workerState
	runs    map[string]*run
	order   []string // terminal-record eviction order
	acks    map[string]chan ackMsg
	seq     int
	counts  map[State]int
	active  int
	subs    int

	failovers int
	evictions int
	fallbacks int
	draining  bool

	jmu    sync.Mutex
	jitter *rand.Rand

	local   *sched.Scheduler
	drainCh chan struct{}
	stopCh  chan struct{}
	stopped chan struct{}
	stopO   sync.Once
	wg      sync.WaitGroup
}

// NewRouter registers the router's mailbox on the control network and
// starts its receive and eviction loops.
func NewRouter(cfg Config) (*Router, error) {
	cfg.fill()
	if cfg.Port == nil {
		return nil, fmt.Errorf("fleet: router needs a Port")
	}
	inbox, err := cfg.Port.Register(RouterPort, 1024)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	r := &Router{
		cfg:     cfg,
		port:    cfg.Port,
		workers: make(map[string]*workerState),
		runs:    make(map[string]*run),
		acks:    make(map[string]chan ackMsg),
		counts:  make(map[State]int),
		jitter:  rand.New(rand.NewSource(cfg.Seed)),
		local:   sched.New(sched.Config{Workers: cfg.LocalWorkers}),
		drainCh: make(chan struct{}),
		stopCh:  make(chan struct{}),
		stopped: make(chan struct{}),
	}
	r.wg.Add(2)
	go r.recvLoop(inbox)
	go r.evictLoop()
	return r, nil
}

// AttachCenter subscribes the router to the center's disconnect
// notifications, so a worker whose TCP link tears down is failed over
// immediately instead of after the heartbeat window.
func (r *Router) AttachCenter(c *agents.Center) {
	c.OnDisconnect(r.PortsLost)
}

// PortsLost reacts to control-network ports vanishing: any that belong to
// registered workers evict those workers and fail their runs over.
func (r *Router) PortsLost(ports []string) {
	for _, p := range ports {
		if len(p) <= len(workerPortPrefix) || p[:len(workerPortPrefix)] != workerPortPrefix {
			continue
		}
		r.evict(p[len(workerPortPrefix):], "link lost")
	}
}

// reportErr routes an asynchronous failure to the configured handler.
func (r *Router) reportErr(err error) {
	if r.cfg.OnError != nil {
		r.cfg.OnError(err)
	}
}

// publishState emits rn's current state to the events hub. Callers hold
// r.mu, which is what guarantees per-run event order matches the actual
// transition order (Publish itself never blocks).
func (r *Router) publishState(rn *run) {
	if r.cfg.Events == nil {
		return
	}
	r.cfg.Events.Publish(stream.Event{
		Run:   rn.id,
		Type:  stream.TypeState,
		State: string(rn.state),
		Error: rn.err,
	})
}

// Submit admits a run and starts placing it. It returns the queued run's
// status; placement proceeds asynchronously (watch Status or Wait).
func (r *Router) Submit(req SubmitRequest) (RunStatus, error) {
	return r.submit(req, "")
}

// submit is Submit with an optional checkpoint root: when the spec has no
// checkpoint directory and root is non-empty, the run gets <root>/<run-id>
// under the admission lock, so every fleet run is failover-capable by
// default and no two runs can race onto the same directory.
func (r *Router) submit(req SubmitRequest, ckptRoot string) (RunStatus, error) {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return RunStatus{}, fmt.Errorf("fleet: submit %q: %w", req.Tenant, ErrDraining)
	}
	if r.active >= r.cfg.InflightLimit {
		r.mu.Unlock()
		return RunStatus{}, fmt.Errorf("fleet: %d runs in flight: %w", r.cfg.InflightLimit, ErrSaturated)
	}
	r.seq++
	id := fmt.Sprintf("fleet-%06d", r.seq)
	spec := req.Spec
	if spec.CheckpointDir == "" && ckptRoot != "" {
		spec.CheckpointDir = filepath.Join(ckptRoot, safePathComponent(id))
	}
	rn := &run{
		seq:       r.seq,
		id:        id,
		tenant:    req.Tenant,
		priority:  req.Priority,
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	r.runs[rn.id] = rn
	r.subs++
	r.active++
	r.publishState(rn)
	st := rn.status()
	r.mu.Unlock()

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.place(rn, false)
	}()
	return st, nil
}

// place finds a home for the run: capacity-ranked workers first, with
// bounded retries, backoff and jitter, then the local pool. resume marks a
// failover re-placement, which continues from the run's checkpoints.
func (r *Router) place(rn *run, resume bool) {
	backoff := r.cfg.BackoffBase
	tried := make(map[string]bool)
	for attempt := 0; attempt < r.cfg.PlaceAttempts; attempt++ {
		select {
		case <-r.drainCh:
			r.finishUnplaced(rn)
			return
		case <-r.stopCh:
			return
		default:
		}
		w := r.pickWorker(tried)
		if w == nil {
			break // nobody placeable; degrade to local
		}
		tried[w.id] = true
		if attempt > 0 {
			metricRetries.Inc()
		}
		if r.dispatch(rn, w, resume) {
			return
		}
		// Failed attempt: back off with jitter before trying the next
		// candidate so a flapping fleet is not hammered in lockstep.
		sleep := backoff + r.jitterUpTo(backoff/2)
		if backoff < r.cfg.BackoffMax {
			backoff *= 2
			if backoff > r.cfg.BackoffMax {
				backoff = r.cfg.BackoffMax
			}
		}
		select {
		case <-time.After(sleep):
		case <-r.drainCh:
			r.finishUnplaced(rn)
			return
		case <-r.stopCh:
			return
		}
	}
	r.runLocal(rn, resume)
}

func (r *Router) jitterUpTo(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	r.jmu.Lock()
	defer r.jmu.Unlock()
	return time.Duration(r.jitter.Int63n(int64(d) + 1))
}

// pickWorker ranks eligible workers by forecast relative capacity (Fig. 4
// applied to the fleet: each worker's heartbeat reading is one "node" of
// the capacity calculation) discounted by in-flight load, preferring ones
// this placement has not tried. Returns nil when nobody is placeable.
func (r *Router) pickWorker(tried map[string]bool) *workerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	eligible := make([]*workerState, 0, len(r.workers))
	for _, w := range r.workers {
		if w.evicted || w.draining || now.Before(w.openUntil) {
			continue
		}
		if now.Sub(w.lastBeat) > r.cfg.HeartbeatTimeout {
			continue
		}
		if w.busy() >= w.slots {
			continue
		}
		eligible = append(eligible, w)
	}
	metricReachableWorkers.Set(float64(len(eligible)))
	if len(eligible) == 0 {
		return nil
	}
	// Prefer untried candidates; fall back to the full set only when every
	// eligible worker has already failed this placement once.
	fresh := eligible[:0:0]
	for _, w := range eligible {
		if !tried[w.id] {
			fresh = append(fresh, w)
		}
	}
	if len(fresh) > 0 {
		eligible = fresh
	}
	sort.Slice(eligible, func(i, j int) bool { return eligible[i].id < eligible[j].id })
	readings := make([]monitor.Reading, len(eligible))
	for i, w := range eligible {
		readings[i] = w.reading
	}
	caps, err := monitor.Capacities(readings, r.cfg.Weights)
	best := eligible[0]
	bestScore := -1.0
	for i, w := range eligible {
		score := 1.0
		if err == nil {
			score = caps[i]
		}
		score /= float64(1 + w.busy())
		if score > bestScore {
			best, bestScore = w, score
		}
	}
	best.inflight++
	return best
}

// busy is the worker's in-use slot count: whichever is larger of its own
// report and the router's in-flight dispatches (the heartbeat may not have
// seen the latest dispatch yet). Callers hold r.mu.
func (w *workerState) busy() int {
	if w.inflight > w.reported {
		return w.inflight
	}
	return w.reported
}

// dispatch sends one placement to w and waits for its acknowledgment under
// the dispatch deadline. Returns true when the worker accepted the run.
func (r *Router) dispatch(rn *run, w *workerState, resume bool) bool {
	r.mu.Lock()
	rn.attempt++
	attempt := rn.attempt
	// Record the placement now, not on ack: a short run's result can beat
	// the ack through the mailbox, and the terminal record must still say
	// where it executed.
	rn.placement = w.id
	spec := rn.spec
	if resume && spec.CheckpointDir != "" {
		spec.Resume = true
	}
	ackCh := make(chan ackMsg, 1)
	r.acks[rn.id] = ackCh
	r.mu.Unlock()

	release := func() {
		r.mu.Lock()
		delete(r.acks, rn.id)
		w.inflight--
		r.mu.Unlock()
	}
	msg := dispatchMsg{RunID: rn.id, Attempt: attempt, Tenant: rn.tenant, Spec: spec}
	if err := send(r.port, RouterPort, w.port, KindDispatch, msg); err != nil {
		release()
		r.workerFailed(w)
		dispatchSendErr.Inc()
		r.reportErr(fmt.Errorf("fleet: dispatch %s to %s: %w", rn.id, w.id, err))
		return false
	}
	timer := time.NewTimer(r.cfg.DispatchDeadline)
	defer timer.Stop()
	select {
	case ack := <-ackCh:
		if ack.Err != "" {
			release()
			r.workerFailed(w)
			dispatchRejected.Inc()
			return false
		}
		r.mu.Lock()
		delete(r.acks, rn.id)
		w.failures = 0
		// The run may already be terminal — its result can arrive before
		// this goroutine wakes. Never un-finish it.
		if !rn.state.terminal() {
			rn.state = StateRunning
			r.publishState(rn)
		}
		if !rn.started {
			rn.started = true
			rn.startedAt = time.Now()
			metricPlacementSeconds.Observe(rn.startedAt.Sub(rn.submitted).Seconds())
		}
		r.mu.Unlock()
		dispatchOK.Inc()
		return true
	case <-timer.C:
		// No acknowledgment within the deadline. The worker may still have
		// admitted the run (the ack was lost); the attempt number makes any
		// late result from it stale, and a duplicate execution computes the
		// identical result into the same atomic checkpoint store.
		release()
		r.workerFailed(w)
		dispatchTimeout.Inc()
		return false
	case <-r.stopCh:
		release()
		return false
	}
}

// workerFailed charges one dispatch failure against w's circuit breaker.
func (r *Router) workerFailed(w *workerState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w.failures++
	if w.failures >= r.cfg.BreakerThreshold && time.Now().After(w.openUntil) {
		w.openUntil = time.Now().Add(r.cfg.BreakerCooldown)
		w.failures = 0
		metricBreakerOpens.Inc()
	}
}

// runLocal degrades the run to the router's in-process pool — the zero-
// reachable-workers path. The run still checkpoints and drains exactly as
// it would on a worker.
func (r *Router) runLocal(rn *run, resume bool) {
	spec := rn.spec
	if resume && spec.CheckpointDir != "" {
		spec.Resume = true
	}
	rs, err := r.cfg.Materialize(spec)
	if err != nil {
		r.finish(rn, StateFailed, fmt.Sprintf("materialize: %v", err), false, nil)
		return
	}
	st, err := r.local.Submit(sched.SubmitRequest{Tenant: rn.tenant, Priority: rn.priority, Weight: rn.spec.Weight, Spec: rs})
	if err != nil {
		if errors.Is(err, sched.ErrDraining) {
			r.finishUnplaced(rn)
			return
		}
		r.finish(rn, StateFailed, fmt.Sprintf("local fallback: %v", err), false, nil)
		return
	}
	r.mu.Lock()
	rn.attempt++
	rn.state = StateRunning
	r.publishState(rn)
	rn.placement = "local"
	if !rn.started {
		rn.started = true
		rn.startedAt = time.Now()
		metricPlacementSeconds.Observe(rn.startedAt.Sub(rn.submitted).Seconds())
	}
	r.fallbacks++
	r.mu.Unlock()
	metricLocalFallbacks.Inc()

	final, err := r.local.Wait(context.Background(), st.ID)
	if err != nil {
		r.finish(rn, StateFailed, fmt.Sprintf("local wait: %v", err), false, nil)
		return
	}
	switch final.State {
	case sched.StateDone:
		r.finish(rn, StateDone, "", false, final.Result)
	case sched.StateDrained:
		r.finish(rn, StateDrained, final.Error, final.Resumable, nil)
	default:
		r.finish(rn, StateFailed, final.Error, false, nil)
	}
}

// finishUnplaced records a run stopped by a drain before (re)placement
// completed: drained-resumable if it ever started and can continue from
// checkpoints, cancelled otherwise.
func (r *Router) finishUnplaced(rn *run) {
	if rn.started && rn.spec.CheckpointDir != "" {
		r.finish(rn, StateDrained, "fleet draining before re-placement", true, nil)
		return
	}
	r.finish(rn, StateCancelled, "", false, nil)
}

// finish records a run's terminal state. Idempotent: late duplicates are
// dropped.
func (r *Router) finish(rn *run, state State, errText string, resumable bool, res *core.RunResult) {
	r.mu.Lock()
	if rn.state.terminal() {
		r.mu.Unlock()
		return
	}
	rn.state = state
	rn.err = errText
	rn.resumable = resumable
	rn.result = res
	rn.finished = time.Now()
	r.publishState(rn)
	r.active--
	r.counts[state]++
	r.order = append(r.order, rn.id)
	for len(r.order) > r.cfg.KeepFinished {
		delete(r.runs, r.order[0])
		r.order = r.order[1:]
	}
	r.mu.Unlock()
	metricRunsTotal.With(string(state)).Inc()
	rn.doneO.Do(func() { close(rn.done) })
}

// recvLoop consumes the router mailbox until the port closes.
func (r *Router) recvLoop(inbox <-chan agents.Message) {
	defer r.wg.Done()
	for m := range inbox {
		switch m.Kind {
		case KindHello:
			var h helloMsg
			if err := agents.Decode(m, &h); err != nil {
				r.reportErr(fmt.Errorf("fleet: bad hello: %w", err))
				continue
			}
			r.handleHello(h)
		case KindHeartbeat:
			var hb heartbeatMsg
			if err := agents.Decode(m, &hb); err != nil {
				r.reportErr(fmt.Errorf("fleet: bad heartbeat: %w", err))
				continue
			}
			r.handleHeartbeat(hb)
		case KindAck:
			var a ackMsg
			if err := agents.Decode(m, &a); err != nil {
				r.reportErr(fmt.Errorf("fleet: bad ack: %w", err))
				continue
			}
			r.handleAck(a)
		case KindResult:
			var res resultMsg
			if err := agents.Decode(m, &res); err != nil {
				r.reportErr(fmt.Errorf("fleet: bad result: %w", err))
				continue
			}
			r.handleResult(res)
		case KindBye:
			var b byeMsg
			if err := agents.Decode(m, &b); err != nil {
				r.reportErr(fmt.Errorf("fleet: bad bye: %w", err))
				continue
			}
			r.handleBye(b)
		}
	}
}

func (r *Router) handleHello(h helloMsg) {
	if h.ID == "" {
		return
	}
	r.mu.Lock()
	w := r.workers[h.ID]
	if w == nil {
		w = &workerState{id: h.ID, port: WorkerPort(h.ID)}
		r.workers[h.ID] = w
	}
	// A re-hello is a worker process (re)starting: clear the stale view.
	w.slots = h.Slots
	w.reported = 0
	w.inflight = 0
	w.evicted = false
	w.draining = false
	w.failures = 0
	w.openUntil = time.Time{}
	w.lastBeat = time.Now()
	w.reading = monitor.Reading{CPU: 1, MemoryMB: h.MemoryMB, BandwidthMBps: h.BandwidthMBps}
	live := 0
	for _, ws := range r.workers {
		if !ws.evicted {
			live++
		}
	}
	r.mu.Unlock()
	metricWorkers.Set(float64(live))
}

func (r *Router) handleHeartbeat(hb heartbeatMsg) {
	metricHeartbeats.Inc()
	r.mu.Lock()
	w := r.workers[hb.ID]
	if w == nil || w.evicted {
		r.mu.Unlock()
		// Heartbeat from a worker we do not know (router restarted, or the
		// worker was evicted while partitioned): ask it to re-introduce
		// itself by ignoring the beat; the worker re-hellos periodically.
		return
	}
	w.lastBeat = time.Now()
	w.reported = hb.Active
	if hb.Slots > 0 {
		w.slots = hb.Slots
	}
	w.reading = monitor.Reading{CPU: hb.CPU, MemoryMB: hb.MemoryMB, BandwidthMBps: hb.BandwidthMBps}
	r.mu.Unlock()
}

func (r *Router) handleAck(a ackMsg) {
	r.mu.Lock()
	rn := r.runs[a.RunID]
	ch := r.acks[a.RunID]
	stale := rn == nil || rn.attempt != a.Attempt
	r.mu.Unlock()
	if stale || ch == nil {
		return
	}
	select {
	case ch <- a:
	default:
	}
}

func (r *Router) handleResult(res resultMsg) {
	r.mu.Lock()
	rn := r.runs[res.RunID]
	if rn == nil || rn.state.terminal() || rn.attempt != res.Attempt {
		r.mu.Unlock()
		return // stale attempt: a superseded placement reported in late
	}
	if w := r.workers[rn.placement]; w != nil && w.inflight > 0 {
		w.inflight--
	}
	drainingNow := r.draining
	r.mu.Unlock()

	switch res.State {
	case string(sched.StateDone):
		r.finish(rn, StateDone, "", false, res.Result)
	case string(sched.StateDrained):
		if drainingNow {
			r.finish(rn, StateDrained, res.Err, res.Resumable, nil)
			return
		}
		// The worker drained (it is shutting down) but the fleet is not:
		// move the run to a survivor and continue from its checkpoints.
		r.failover(rn)
	default:
		r.finish(rn, StateFailed, res.Err, false, nil)
	}
}

func (r *Router) handleBye(b byeMsg) {
	r.mu.Lock()
	if w := r.workers[b.ID]; w != nil {
		w.draining = true
	}
	r.mu.Unlock()
}

// evictLoop scans for workers silent past the heartbeat window.
func (r *Router) evictLoop() {
	defer r.wg.Done()
	interval := r.cfg.HeartbeatTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-ticker.C:
		}
		now := time.Now()
		var silent []string
		r.mu.Lock()
		for id, w := range r.workers {
			if !w.evicted && now.Sub(w.lastBeat) > r.cfg.HeartbeatTimeout {
				silent = append(silent, id)
			}
		}
		r.mu.Unlock()
		for _, id := range silent {
			r.evict(id, "heartbeat silence")
		}
	}
}

// evict removes a worker from rotation and fails its runs over to
// survivors (or, during a fleet drain, records them drained-resumable).
func (r *Router) evict(id, cause string) {
	r.mu.Lock()
	w := r.workers[id]
	if w == nil || w.evicted {
		r.mu.Unlock()
		return
	}
	w.evicted = true
	w.inflight = 0
	r.evictions++
	var orphans []*run
	for _, rn := range r.runs {
		if !rn.state.terminal() && rn.placement == id && rn.state == StateRunning {
			orphans = append(orphans, rn)
		}
	}
	live := 0
	for _, ws := range r.workers {
		if !ws.evicted {
			live++
		}
	}
	r.mu.Unlock()
	metricEvictions.Inc()
	metricWorkers.Set(float64(live))
	r.reportErr(fmt.Errorf("fleet: evicted worker %s (%s), %d runs to fail over", id, cause, len(orphans)))
	for _, rn := range orphans {
		r.failover(rn)
	}
}

// failover re-places a run whose worker was lost. The re-placement resumes
// from the run's latest CRC-verified checkpoint; after MaxFailovers moves
// the run falls straight back to local execution rather than bouncing
// around a collapsing fleet.
func (r *Router) failover(rn *run) {
	r.mu.Lock()
	// Only a currently placed run can fail over; StateQueued means another
	// failover already owns the re-placement (evict and a late drained
	// result can both nominate the same run).
	if rn.state != StateRunning {
		r.mu.Unlock()
		return
	}
	// Invalidate the lost placement immediately: any ack or result still in
	// flight from the dead worker now carries a stale attempt number.
	rn.attempt++
	rn.failovers++
	r.failovers++
	exhausted := rn.failovers > r.cfg.MaxFailovers
	rn.state = StateQueued
	r.publishState(rn)
	rn.placement = ""
	draining := r.draining
	r.mu.Unlock()
	metricFailovers.Inc()
	if draining {
		r.finishUnplaced(rn)
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		if exhausted {
			r.runLocal(rn, true)
			return
		}
		r.place(rn, true)
	}()
}

// Status returns one run's snapshot.
func (r *Router) Status(id string) (RunStatus, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rn, ok := r.runs[id]
	if !ok {
		return RunStatus{}, false
	}
	return rn.status(), true
}

// Wait blocks until the run reaches a terminal state (or ctx ends).
func (r *Router) Wait(ctx context.Context, id string) (RunStatus, error) {
	r.mu.Lock()
	rn, ok := r.runs[id]
	r.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("fleet: unknown run %q", id)
	}
	select {
	case <-rn.done:
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return rn.status(), nil
}

// Runs lists every retained run record in submission order.
func (r *Router) Runs() []RunStatus {
	return r.RunsPage("", 0)
}

// DefaultRunsLimit caps an HTTP /sched/runs page when no explicit
// ?limit= is given.
const DefaultRunsLimit = 256

// RunsPage lists retained run records in submission order, skipping runs
// submitted up to and including run ID after ("" starts from the oldest
// retained record; IDs embed the submission sequence, so an evicted or
// future ID still orders correctly). limit bounds the page size;
// limit <= 0 means unbounded. Page through a large backlog by passing the
// last returned ID as the next after.
func (r *Router) RunsPage(after string, limit int) []RunStatus {
	afterSeq := 0
	if after != "" {
		if n, err := strconv.Atoi(strings.TrimPrefix(after, "fleet-")); err == nil {
			afterSeq = n
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := make([]*run, 0, len(r.runs))
	for _, rn := range r.runs {
		if rn.seq > afterSeq {
			rs = append(rs, rn)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].seq < rs[j].seq })
	if limit > 0 && len(rs) > limit {
		rs = rs[:limit]
	}
	out := make([]RunStatus, len(rs))
	for i, rn := range rs {
		out[i] = rn.status()
	}
	return out
}

// Workers lists the router's view of the fleet, evicted members included.
func (r *Router) Workers() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerInfo{
			ID:            w.id,
			Slots:         w.slots,
			Active:        w.busy(),
			CPU:           w.reading.CPU,
			LastHeartbeat: w.lastBeat,
			BreakerOpen:   now.Before(w.openUntil),
			Evicted:       w.evicted,
			Draining:      w.draining,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns the router's aggregate state.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	st := Stats{
		Draining:       r.draining,
		Submitted:      r.subs,
		Active:         r.active,
		Done:           r.counts[StateDone],
		Failed:         r.counts[StateFailed],
		Drained:        r.counts[StateDrained],
		Cancelled:      r.counts[StateCancelled],
		Failovers:      r.failovers,
		Evictions:      r.evictions,
		LocalFallbacks: r.fallbacks,
	}
	for _, w := range r.workers {
		if w.evicted {
			continue
		}
		st.Workers++
		if !w.draining && now.Sub(w.lastBeat) <= r.cfg.HeartbeatTimeout &&
			!now.Before(w.openUntil) && w.busy() < w.slots {
			st.Reachable++
		}
	}
	return st
}

// Draining reports whether a fleet drain has begun — the /readyz signal.
func (r *Router) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Drain gracefully stops the fleet: admission closes, every live worker is
// asked to drain (their in-flight runs checkpoint at the next regrid
// boundary and report back drained-resumable), the local pool drains, and
// Drain returns once every run is terminal — or earlier with ctx's error.
func (r *Router) Drain(ctx context.Context) error {
	r.mu.Lock()
	first := !r.draining
	if first {
		r.draining = true
		close(r.drainCh)
	}
	var workerPorts []string
	for _, w := range r.workers {
		if !w.evicted {
			workerPorts = append(workerPorts, w.port)
		}
	}
	r.mu.Unlock()

	if first {
		for _, p := range workerPorts {
			if err := send(r.port, RouterPort, p, KindDrain, struct{}{}); err != nil {
				r.reportErr(fmt.Errorf("fleet: drain %s: %w", p, err))
			}
		}
	}
	if err := r.local.Drain(ctx); err != nil {
		return err
	}
	// Wait for the remote runs to report (or for their workers to be
	// evicted, which records them drained through the failover path).
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for {
		r.mu.Lock()
		active := r.active
		r.mu.Unlock()
		if active == 0 {
			r.stopO.Do(func() { close(r.stopped) })
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: drain: %w", ctx.Err())
		case <-ticker.C:
		}
	}
}

// Stopped returns a channel closed once a drain completes — however it was
// initiated (Drain, Close, or the HTTP drain endpoint). Serving binaries
// select on it to exit after a remote drain.
func (r *Router) Stopped() <-chan struct{} { return r.stopped }

// Close drains with no deadline, then stops the router's loops and
// releases its mailbox.
func (r *Router) Close() error {
	err := r.Drain(context.Background())
	select {
	case <-r.stopCh:
	default:
		close(r.stopCh)
	}
	r.port.Unregister(RouterPort)
	r.wg.Wait()
	return err
}

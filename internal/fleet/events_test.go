package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/stream"
)

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", resp.Request.URL, err)
	}
}

// TestFleetEventsOnResultPath submits a run through a real TCP worker and
// requires the hub to carry its full queued→running→done lifecycle —
// including the terminal event published on the router's result path.
func TestFleetEventsOnResultPath(t *testing.T) {
	hub := stream.NewHub(stream.Config{})
	defer hub.Close()
	mat := testMaterializer(t)
	center, addr := startCenter(t)
	r := testRouter(t, center, mat, func(c *Config) { c.Events = hub })
	w, cl := startWorker(t, addr, "w0", mat, 2)
	t.Cleanup(func() { cl.Close() })
	t.Cleanup(func() { w.Close() })
	waitReachable(t, r, 1)

	// Pace the regrids so the dispatch ack (and its running event) lands
	// before the worker's result does; an instant run may legitimately
	// jump queued→done when its result beats the ack through the mailbox.
	st, err := r.Submit(SubmitRequest{Tenant: "acme", Spec: WireSpec{RegridDelayMS: 5}})
	if err != nil {
		t.Fatal(err)
	}
	sub := hub.Subscribe(st.ID, 0) // history replay covers the submit event
	defer hub.Unsubscribe(sub)

	var states []string
	deadline := time.After(2 * time.Minute)
	for {
		select {
		case e := <-sub.C:
			if e.Type == stream.TypeState {
				states = append(states, e.State)
			}
		case <-deadline:
			t.Fatalf("timed out; states so far %v", states)
		}
		if len(states) > 0 && State(states[len(states)-1]).terminal() {
			break
		}
	}
	want := []string{"queued", "running", "done"}
	if len(states) != len(want) {
		t.Fatalf("state events %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state events %v, want %v", states, want)
		}
	}
	if d := sub.Dropped(); d != 0 {
		t.Errorf("subscriber dropped %d events unexpectedly", d)
	}
}

// TestFleetHandlerPaginationAndEvents exercises the HTTP surface: paginated
// /sched/runs, the SSE mount, and the JSON 404 fallback.
func TestFleetHandlerPaginationAndEvents(t *testing.T) {
	hub := stream.NewHub(stream.Config{})
	defer hub.Close()
	mat := testMaterializer(t)
	center, addr := startCenter(t)
	r := testRouter(t, center, mat, func(c *Config) { c.Events = hub })
	w, cl := startWorker(t, addr, "w0", mat, 4)
	t.Cleanup(func() { cl.Close() })
	t.Cleanup(func() { w.Close() })
	waitReachable(t, r, 1)
	srv := httptest.NewServer(Handler(r, t.TempDir()))
	defer srv.Close()

	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		st, err := r.Submit(SubmitRequest{Tenant: "acme", Spec: WireSpec{}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, id := range ids {
		if _, err := r.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}

	page := func(query string) []RunStatus {
		t.Helper()
		resp, err := http.Get(srv.URL + "/sched/runs" + query)
		if err != nil {
			t.Fatal(err)
		}
		var out []RunStatus
		decodeJSON(t, resp, &out)
		return out
	}
	first := page("?limit=3")
	if len(first) != 3 || first[0].ID != ids[0] {
		t.Fatalf("first page: %d records starting %q", len(first), first[0].ID)
	}
	rest := page("?after=" + first[len(first)-1].ID)
	if len(rest) != 2 || rest[0].ID != ids[3] {
		t.Fatalf("second page: %d records starting %q, want %q", len(rest), rest[0].ID, ids[3])
	}
	resp, err := http.Get(srv.URL + "/sched/runs?limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", resp.StatusCode)
	}

	// Long-poll catch-up over HTTP: the whole history should arrive at once.
	presp, err := http.Get(srv.URL + "/sched/events?run=" + ids[0] + "&poll=1&timeout=5s")
	if err != nil {
		t.Fatal(err)
	}
	var poll struct {
		Events []stream.Event `json:"events"`
	}
	decodeJSON(t, presp, &poll)
	terminalSeen := false
	for _, e := range poll.Events {
		if e.Type == stream.TypeState && State(e.State).terminal() {
			terminalSeen = true
		}
	}
	if !terminalSeen {
		t.Errorf("long-poll catch-up for %s carried no terminal event: %+v", ids[0], poll.Events)
	}

	nresp, err := http.Get(srv.URL + "/sched/bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", nresp.StatusCode)
	}
	if ct := nresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("404 Content-Type %q, want application/json", ct)
	}
}

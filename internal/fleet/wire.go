// Package fleet is Pragma's federated control plane: a router that shards
// submitted runs across many pragma-node worker processes over the agents
// TCP control network, and the worker that executes its share.
//
// The paper manages one application per runtime; ROADMAP's next scale jump
// is the layer grid schedulers put *between* the submission API and the
// per-process run schedulers: capacity-aware placement across machines.
// Workers advertise forecast capacity in heartbeats (the Fig. 4 relative
// capacity math, applied to fleet placement instead of intra-run
// partitioning); the router places each run on the worker with the most
// predicted headroom, guarded by per-worker circuit breakers, bounded
// retries with exponential backoff + jitter, and per-dispatch deadlines.
//
// The robustness core is failover: when a worker goes silent past the
// heartbeat window, or its link tears down, every run placed on it is
// resumed on a surviving worker from its latest CRC-verified checkpoint
// (internal/checkpoint guarantees bit-identical resume), and when zero
// workers are reachable the router degrades to executing runs in-process.
// See DESIGN.md §14 for the failure model and failover sequence.
package fleet

import (
	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/core"
)

// RouterPort is the mailbox the router registers on the Message Center.
// Workers address all their traffic to it.
const RouterPort = "pragma/fleet/router"

// workerPortPrefix prefixes every worker mailbox, so the router can
// recognize worker ports in the Center's disconnect notifications.
const workerPortPrefix = "pragma/fleet/worker/"

// WorkerPort returns the mailbox name a worker with the given identity
// registers.
func WorkerPort(id string) string { return workerPortPrefix + id }

// Message kinds of the fleet protocol. All payloads are JSON, carried in
// agents.Message over the existing control network — the fleet adds no
// second wire protocol.
const (
	// KindHello announces a worker to the router (worker → router).
	KindHello = "fleet.hello"
	// KindHeartbeat carries a worker's forecast capacity reading
	// (worker → router, periodic).
	KindHeartbeat = "fleet.heartbeat"
	// KindDispatch places one run on a worker (router → worker).
	KindDispatch = "fleet.dispatch"
	// KindAck answers a dispatch with the worker's admission verdict
	// (worker → router).
	KindAck = "fleet.ack"
	// KindResult reports a run's terminal state (worker → router).
	KindResult = "fleet.result"
	// KindDrain asks a worker to drain gracefully (router → worker).
	KindDrain = "fleet.drain"
	// KindBye announces a worker's graceful departure (worker → router).
	KindBye = "fleet.bye"
)

// helloMsg is KindHello's payload.
type helloMsg struct {
	ID    string `json:"id"`
	Slots int    `json:"slots"`
	// MemoryMB and BandwidthMBps are the worker's advertised static
	// resources, the non-CPU terms of the Fig. 4 capacity formula.
	MemoryMB      float64 `json:"memoryMB"`
	BandwidthMBps float64 `json:"bandwidthMBps"`
}

// heartbeatMsg is KindHeartbeat's payload: one capacity advertisement.
type heartbeatMsg struct {
	ID  string `json:"id"`
	Seq int    `json:"seq"`
	// CPU is the forecast available-CPU fraction in [0, 1] from the
	// worker's AvailabilityForecaster.
	CPU float64 `json:"cpu"`
	// Active is the worker's queued-plus-running run count; Slots its pool
	// size. The router places only where Active < Slots.
	Active        int     `json:"active"`
	Slots         int     `json:"slots"`
	MemoryMB      float64 `json:"memoryMB"`
	BandwidthMBps float64 `json:"bandwidthMBps"`
}

// dispatchMsg is KindDispatch's payload: one placement attempt.
type dispatchMsg struct {
	RunID string `json:"runID"`
	// Attempt numbers the run's placement attempts; acks and results
	// carrying a stale attempt are ignored, so a zombie worker that
	// reconnects after eviction cannot corrupt the record of the failover
	// that superseded it.
	Attempt int      `json:"attempt"`
	Tenant  string   `json:"tenant,omitempty"`
	Spec    WireSpec `json:"spec"`
}

// ackMsg is KindAck's payload: the worker's admission verdict for one
// dispatch.
type ackMsg struct {
	RunID   string `json:"runID"`
	Attempt int    `json:"attempt"`
	Err     string `json:"err,omitempty"`
}

// resultMsg is KindResult's payload: one run's terminal state on a worker.
type resultMsg struct {
	RunID   string `json:"runID"`
	Attempt int    `json:"attempt"`
	// State is the worker-side outcome: done, failed or drained
	// (sched.State values).
	State     string          `json:"state"`
	Err       string          `json:"err,omitempty"`
	Resumable bool            `json:"resumable,omitempty"`
	Result    *core.RunResult `json:"result,omitempty"`
}

// byeMsg is KindBye's payload.
type byeMsg struct {
	ID string `json:"id"`
}

// send is a small helper: encode payload v and send it from one port to
// another over the control network.
func send(p agents.Port, from, to, kind string, v interface{}) error {
	return p.Send(agents.Message{From: from, To: to, Kind: kind, Payload: agents.Encode(v)})
}

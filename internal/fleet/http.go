package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"github.com/pragma-grid/pragma/internal/stream"
)

// Handler exposes the router over HTTP with the same /sched/* shape the
// single-node scheduler serves, so clients need not care whether they are
// talking to one node or a fleet:
//
//	POST /sched/submit?tenant=T&priority=N&...  admit a run fleet-wide
//	GET  /sched/status?id=fleet-000001          one run's status
//	GET  /sched/runs                            every retained run record
//	GET  /sched/stats                           aggregate fleet state
//	POST /sched/drain                           drain the whole fleet
//	GET  /sched/fleet                           per-worker placement view
//
// Submit's spec parameters are WireSpec fields (trace, scenario, seed,
// strategy, procs, checkpoint, checkpoint-every, checkpoint-keep, resume,
// regrid-delay-ms). checkpointRoot, when non-empty, gives runs submitted
// without an explicit checkpoint dir one under it — keyed by run ID — so
// every fleet run is failover-capable by default.
func Handler(r *Router, checkpointRoot string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sched/submit", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		v := req.URL.Query()
		tenant := v.Get("tenant")
		priority := 0
		if p := v.Get("priority"); p != "" {
			n, err := strconv.Atoi(p)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad priority: "+err.Error())
				return
			}
			priority = n
		}
		spec, err := SpecFromValues(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		st, err := r.SubmitWithRoot(SubmitRequest{Tenant: tenant, Priority: priority, Spec: spec}, checkpointRoot)
		switch {
		case errors.Is(err, ErrSaturated):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	})
	mux.HandleFunc("/sched/status", func(w http.ResponseWriter, req *http.Request) {
		st, ok := r.Status(req.URL.Query().Get("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown run id")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/sched/runs", func(w http.ResponseWriter, req *http.Request) {
		// Paginated like the single-node surface: at most ?limit= records
		// (default and cap DefaultRunsLimit) after run ID ?after=.
		v := req.URL.Query()
		limit := DefaultRunsLimit
		if l := v.Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil || n <= 0 {
				httpError(w, http.StatusBadRequest, "bad limit")
				return
			}
			if n < limit {
				limit = n
			}
		}
		writeJSON(w, http.StatusOK, r.RunsPage(v.Get("after"), limit))
	})
	mux.HandleFunc("/sched/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Stats())
	})
	mux.HandleFunc("/sched/drain", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if err := r.Drain(req.Context()); err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, r.Stats())
	})
	mux.HandleFunc("/sched/fleet", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Workers []WorkerInfo `json:"workers"`
			Stats   Stats        `json:"stats"`
		}{r.Workers(), r.Stats()})
	})
	if r.cfg.Events != nil {
		mux.Handle("/sched/events", stream.Handler(r.cfg.Events, stream.HandlerConfig{}))
	}
	// JSON 404 for unknown /sched/ paths: every error this surface emits
	// is application/json, including routing misses.
	mux.HandleFunc("/sched/", func(w http.ResponseWriter, req *http.Request) {
		httpError(w, http.StatusNotFound, "unknown sched endpoint")
	})
	return mux
}

// SubmitWithRoot admits a run like Submit, additionally defaulting its
// checkpoint directory to <root>/<run-id> when the spec has none and root
// is non-empty — the run ID is path-sanitized first.
func (r *Router) SubmitWithRoot(req SubmitRequest, root string) (RunStatus, error) {
	return r.submit(req, root)
}

// SpecFromValues parses WireSpec fields out of URL query parameters — the
// /sched/submit wire format.
func SpecFromValues(v url.Values) (WireSpec, error) {
	ws := WireSpec{
		Trace:    v.Get("trace"),
		Scenario: v.Get("scenario"),
		Strategy: v.Get("strategy"),
	}
	if ws.Trace != "" && ws.Scenario != "" {
		return WireSpec{}, fmt.Errorf("fleet: trace and scenario are mutually exclusive")
	}
	intField := func(name string, dst *int) error {
		if s := v.Get(name); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("fleet: bad %s: %w", name, err)
			}
			*dst = n
		}
		return nil
	}
	if err := intField("procs", &ws.Procs); err != nil {
		return WireSpec{}, err
	}
	if err := intField("checkpoint-every", &ws.CheckpointEvery); err != nil {
		return WireSpec{}, err
	}
	if err := intField("checkpoint-keep", &ws.CheckpointKeep); err != nil {
		return WireSpec{}, err
	}
	if err := intField("regrid-delay-ms", &ws.RegridDelayMS); err != nil {
		return WireSpec{}, err
	}
	if s := v.Get("seed"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return WireSpec{}, fmt.Errorf("fleet: bad seed: %w", err)
		}
		ws.Seed, ws.SeedSet = n, true
	}
	if s := v.Get("checkpoint"); s != "" {
		ws.CheckpointDir = s
	}
	if s := v.Get("resume"); s != "" {
		b, err := strconv.ParseBool(s)
		if err != nil {
			return WireSpec{}, fmt.Errorf("fleet: bad resume: %w", err)
		}
		ws.Resume = b
	}
	if s := v.Get("weight"); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f <= 0 {
			return WireSpec{}, fmt.Errorf("fleet: bad weight: must be a positive number")
		}
		ws.Weight = f
	}
	return ws, nil
}

// safePathComponent strips anything that could escape the checkpoint root
// out of a run ID used as a directory name.
func safePathComponent(s string) string {
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
	if s == "" {
		s = "run"
	}
	return s
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

package hydro

import (
	"math"
	"testing"

	"github.com/pragma-grid/pragma/internal/samr"
)

func mustGrid(t testing.TB, nx, ny, nz int, dx float64) *Grid {
	t.Helper()
	g, err := NewGrid(nx, ny, nz, dx, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 4, 4, 0.1, 1.4); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := NewGrid(4, 4, 4, 0, 1.4); err == nil {
		t.Error("zero dx accepted")
	}
	if _, err := NewGrid(4, 4, 4, 0.1, 1.0); err == nil {
		t.Error("gamma 1 accepted")
	}
}

func TestPrimConservedRoundTrip(t *testing.T) {
	g := mustGrid(t, 2, 2, 2, 0.5)
	s := Conserved(g.Gamma, 1.3, 0.4, -0.2, 0.7, 2.1)
	rho, u, v, w, p := g.Prim(s)
	for _, c := range []struct{ got, want float64 }{
		{rho, 1.3}, {u, 0.4}, {v, -0.2}, {w, 0.7}, {p, 2.1},
	} {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Fatalf("round trip: got %g want %g", c.got, c.want)
		}
	}
	// Degenerate state does not divide by zero.
	if rho, _, _, _, _ := g.Prim(State{}); rho != 0 {
		t.Fatal("zero state mishandled")
	}
}

func TestUniformStateIsSteady(t *testing.T) {
	// A constant state is an exact steady solution: nothing may change.
	g := mustGrid(t, 8, 8, 8, 0.1)
	s := Conserved(g.Gamma, 1, 0.3, -0.1, 0.2, 1)
	g.Fill(func(i, j, k int) State { return s })
	g.Advance(10, 0.4)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				got := g.At(i, j, k)
				if math.Abs(got.Rho-s.Rho) > 1e-12 || math.Abs(got.E-s.E) > 1e-11 {
					t.Fatalf("uniform state drifted at (%d,%d,%d): %+v", i, j, k, got)
				}
			}
		}
	}
}

func TestMassConservedBeforeWavesReachBoundary(t *testing.T) {
	g := mustGrid(t, 128, 4, 4, 1.0/128)
	SodX(g)
	before := g.TotalMass()
	// Short run: waves stay inside the domain, outflow BCs see nothing.
	g.AdvanceTo(0.05, 0.4)
	after := g.TotalMass()
	if rel := math.Abs(after-before) / before; rel > 1e-10 {
		t.Fatalf("mass drifted by %.3e", rel)
	}
}

func TestSodShockTube(t *testing.T) {
	// The classic Sod problem (gamma=1.4): at t=0.2 the exact solution has
	// the shock near x=0.850, the contact near x=0.685, and a rarefaction
	// between x=0.263 and x=0.486. First-order Rusanov smears the features
	// but must place them correctly.
	nx := 256
	g := mustGrid(t, nx, 4, 4, 1.0/float64(nx))
	SodX(g)
	g.AdvanceTo(0.2, 0.4)

	rho := make([]float64, nx)
	for i := 0; i < nx; i++ {
		rho[i] = g.At(i, 1, 1).Rho
	}
	// End states unchanged.
	if math.Abs(rho[2]-1) > 1e-6 {
		t.Fatalf("left state disturbed: rho=%g", rho[2])
	}
	if math.Abs(rho[nx-3]-0.125) > 1e-6 {
		t.Fatalf("right state disturbed: rho=%g", rho[nx-3])
	}
	// Density is non-increasing left to right (true for Sod's solution).
	for i := 1; i < nx; i++ {
		if rho[i] > rho[i-1]+1e-6 {
			t.Fatalf("density not monotone at i=%d: %g -> %g", i, rho[i-1], rho[i])
		}
	}
	// The shock: steepest descent in the right half; exact position 0.850.
	shock := steepestDrop(rho, nx*6/10, nx-1)
	if x := (float64(shock) + 0.5) / float64(nx); x < 0.80 || x > 0.90 {
		t.Errorf("shock at x=%.3f, want ~0.850", x)
	}
	// Post-shock plateau density: exact value 0.2656 (between contact and
	// shock); sample midway between the detected features.
	contact := steepestDrop(rho, nx/2, shock-4)
	if x := (float64(contact) + 0.5) / float64(nx); x < 0.60 || x > 0.76 {
		t.Errorf("contact at x=%.3f, want ~0.685", x)
	}
	mid := (contact + shock) / 2
	if math.Abs(rho[mid]-0.2656) > 0.03 {
		t.Errorf("post-shock density %.4f, want ~0.2656", rho[mid])
	}
	// Pressure plateau between contact and shock: exact 0.3031.
	_, _, _, _, p := g.Prim(g.At(mid, 1, 1))
	if math.Abs(p-0.3031) > 0.03 {
		t.Errorf("plateau pressure %.4f, want ~0.3031", p)
	}
}

// steepestDrop returns the index in [lo,hi) with the largest rho[i]-rho[i+1].
func steepestDrop(rho []float64, lo, hi int) int {
	best, bestDrop := lo, -1.0
	for i := lo; i < hi && i+1 < len(rho); i++ {
		if d := rho[i] - rho[i+1]; d > bestDrop {
			best, bestDrop = i, d
		}
	}
	return best
}

func TestStableDtPositive(t *testing.T) {
	g := mustGrid(t, 8, 4, 4, 0.1)
	SodX(g)
	dt := g.StableDt(0.4)
	if dt <= 0 || dt > 0.1 {
		t.Fatalf("dt = %g", dt)
	}
	// A cold, motionless grid has no wave speed; dt falls back to dx*cfl.
	g2 := mustGrid(t, 4, 4, 4, 0.1)
	if dt := g2.StableDt(0.5); dt != 0.05 {
		t.Fatalf("fallback dt = %g", dt)
	}
}

func TestFlagGradientsFindShock(t *testing.T) {
	nx := 128
	g := mustGrid(t, nx, 4, 4, 1.0/float64(nx))
	SodX(g)
	g.AdvanceTo(0.1, 0.4)
	flags, err := FlagGradients(g, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if flags.Count() == 0 {
		t.Fatal("no cells flagged around shock")
	}
	// Flags concentrate in the wave region, not the undisturbed ends.
	if flags.CountIn(samr.MakeBox(8, 4, 4)) != 0 {
		t.Error("undisturbed left end flagged")
	}
	if _, err := FlagGradients(g, 0); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestBuildHierarchyCoversShock(t *testing.T) {
	nx := 128
	g := mustGrid(t, nx, 8, 8, 1.0/float64(nx))
	SodX(g)
	g.AdvanceTo(0.1, 0.4)
	h, err := BuildHierarchy(g, 2, 0.02, samr.DefaultClusterOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 2 {
		t.Fatalf("depth = %d", h.Depth())
	}
	// The shock (speed 1.752, so x = 0.5 + 0.175 at t=0.1) must lie inside
	// a refined box.
	shockCell := int(0.675 * float64(nx))
	covered := false
	for _, b := range h.Levels[1] {
		coarse := b.Coarsen(2)
		if coarse.Contains(samr.Point{shockCell, 4, 4}) {
			covered = true
		}
	}
	if !covered {
		t.Errorf("refinement misses the shock at cell %d: %v", shockCell, h.Levels[1])
	}
}

func TestTraceRunProducesUsableTrace(t *testing.T) {
	nx := 64
	g := mustGrid(t, nx, 4, 4, 1.0/float64(nx))
	SodX(g)
	tr, err := TraceRun(g, 40, 8, 0.4, 0.02, samr.DefaultClusterOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Snapshots) != 6 { // initial + 5 regrids
		t.Fatalf("snapshots = %d", len(tr.Snapshots))
	}
	for _, s := range tr.Snapshots {
		if err := s.H.Validate(); err != nil {
			t.Fatalf("snapshot %d: %v", s.Index, err)
		}
	}
	// The refined region moves with the waves: change fraction nonzero.
	moved := false
	for i := 1; i < len(tr.Snapshots); i++ {
		if samr.ChangeFraction(tr.Snapshots[i-1].H, tr.Snapshots[i].H, 1) > 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("refined region never moved across the run")
	}
	if _, err := TraceRun(g, 8, 0, 0.4, 0.02, samr.DefaultClusterOptions()); err == nil {
		t.Error("zero regrid interval accepted")
	}
}

func BenchmarkStep(b *testing.B) {
	g := mustGrid(b, 64, 16, 16, 1.0/64)
	SodX(g)
	dt := g.StableDt(0.4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step(dt)
	}
}

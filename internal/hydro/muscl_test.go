package hydro

import (
	"math"
	"testing"
)

func TestSecondOrderUniformSteady(t *testing.T) {
	g := mustGrid(t, 8, 8, 8, 0.1)
	g.SetOrder(SecondOrder)
	s := Conserved(g.Gamma, 1, 0.3, -0.1, 0.2, 1)
	g.Fill(func(i, j, k int) State { return s })
	g.Advance(10, 0.4)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				got := g.At(i, j, k)
				if math.Abs(got.Rho-s.Rho) > 1e-12 || math.Abs(got.E-s.E) > 1e-11 {
					t.Fatalf("uniform state drifted at (%d,%d,%d): %+v", i, j, k, got)
				}
			}
		}
	}
}

func TestSecondOrderMassConservation(t *testing.T) {
	g := mustGrid(t, 128, 4, 4, 1.0/128)
	g.SetOrder(SecondOrder)
	SodX(g)
	before := g.TotalMass()
	g.AdvanceTo(0.05, 0.4)
	if rel := math.Abs(g.TotalMass()-before) / before; rel > 1e-10 {
		t.Fatalf("mass drifted by %.3e", rel)
	}
}

// shockWidth measures how many cells the shock is smeared over: the span
// where density falls from 90% to 10% of the jump between the post-shock
// plateau and the right state.
func shockWidth(rho []float64, plateau, right float64) int {
	hi := right + 0.9*(plateau-right)
	lo := right + 0.1*(plateau-right)
	first, last := -1, -1
	for i := len(rho) / 2; i < len(rho); i++ {
		if first < 0 && rho[i] < hi {
			first = i
		}
		if last < 0 && rho[i] < lo {
			last = i
			break
		}
	}
	if first < 0 || last < 0 {
		return len(rho)
	}
	return last - first
}

func TestSecondOrderSharpensTheShock(t *testing.T) {
	const nx = 256
	profiles := map[Order][]float64{}
	for _, order := range []Order{FirstOrder, SecondOrder} {
		g := mustGrid(t, nx, 4, 4, 1.0/nx)
		g.SetOrder(order)
		SodX(g)
		g.AdvanceTo(0.2, 0.4)
		rho := make([]float64, nx)
		for i := 0; i < nx; i++ {
			rho[i] = g.At(i, 1, 1).Rho
		}
		profiles[order] = rho
	}
	w1 := shockWidth(profiles[FirstOrder], 0.2656, 0.125)
	w2 := shockWidth(profiles[SecondOrder], 0.2656, 0.125)
	if w2 >= w1 {
		t.Fatalf("second order did not sharpen the shock: width %d vs %d cells", w2, w1)
	}
	// The second-order solution still resolves the Sod structure correctly.
	rho := profiles[SecondOrder]
	shock := steepestDrop(rho, nx*6/10, nx-1)
	if x := (float64(shock) + 0.5) / float64(nx); x < 0.80 || x > 0.90 {
		t.Errorf("second-order shock at x=%.3f, want ~0.850", x)
	}
	// Limited reconstruction stays essentially oscillation-free: no value
	// escapes the initial data range by more than 1%.
	for i, v := range rho {
		if v > 1.01 || v < 0.125*0.99 {
			t.Fatalf("oscillation at i=%d: rho=%g", i, v)
		}
	}
}

func TestSetOrderSwitching(t *testing.T) {
	g := mustGrid(t, 16, 4, 4, 1.0/16)
	SodX(g)
	g.SetOrder(SecondOrder)
	g.Advance(2, 0.4)
	g.SetOrder(FirstOrder)
	g.Advance(2, 0.4)
	// Garbage orders fall back to first order without panicking.
	g.SetOrder(Order(99))
	g.Advance(1, 0.4)
	if g.TotalMass() <= 0 {
		t.Fatal("solver destroyed the field")
	}
}

func BenchmarkStepSecondOrder(b *testing.B) {
	g := mustGrid(b, 64, 16, 16, 1.0/64)
	g.SetOrder(SecondOrder)
	SodX(g)
	dt := g.StableDt(0.4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step(dt)
	}
}

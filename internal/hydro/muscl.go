package hydro

// Second-order spatial reconstruction. The first-order Rusanov scheme in
// hydro.go smears discontinuities over many cells; MUSCL reconstruction
// with a minmod limiter sharpens them substantially while remaining
// oscillation-free. Order selection matters to Pragma because the error
// estimator flags steep gradients: a sharper solver concentrates
// refinement into narrower regions, changing the adaptation pattern the
// octant classifier sees.

// Order selects the spatial accuracy of Step.
type Order int

// Supported spatial orders.
const (
	// FirstOrder uses piecewise-constant states (the default).
	FirstOrder Order = 1
	// SecondOrder uses MUSCL reconstruction with a minmod limiter.
	SecondOrder Order = 2
)

// SetOrder selects the spatial order used by Step and Advance.
func (g *Grid) SetOrder(o Order) {
	if o == SecondOrder {
		g.secondOrder = true
	} else {
		g.secondOrder = false
	}
}

// minmod is the classic symmetric slope limiter.
func minmod(a, b float64) float64 {
	if a > 0 && b > 0 {
		if a < b {
			return a
		}
		return b
	}
	if a < 0 && b < 0 {
		if a > b {
			return a
		}
		return b
	}
	return 0
}

// limitedSlope returns the minmod slope of each conserved component at the
// cell with neighbors lo (i-1) and hi (i+1).
func limitedSlope(lo, c, hi State) State {
	return State{
		Rho: minmod(c.Rho-lo.Rho, hi.Rho-c.Rho),
		Mx:  minmod(c.Mx-lo.Mx, hi.Mx-c.Mx),
		My:  minmod(c.My-lo.My, hi.My-c.My),
		Mz:  minmod(c.Mz-lo.Mz, hi.Mz-c.Mz),
		E:   minmod(c.E-lo.E, hi.E-c.E),
	}
}

func addScaled(s State, d State, f float64) State {
	return State{
		Rho: s.Rho + f*d.Rho,
		Mx:  s.Mx + f*d.Mx,
		My:  s.My + f*d.My,
		Mz:  s.Mz + f*d.Mz,
		E:   s.E + f*d.E,
	}
}

// stepSecondOrder advances the solution by dt with MUSCL-reconstructed
// interface states (one ghost layer suffices because the boundary is
// zero-gradient: the outermost slope degenerates to first order there).
func (g *Grid) stepSecondOrder(dt float64) {
	g.applyBC()
	lambda := dt / g.Dx
	off := [3][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	at := func(i, j, k int) State { return g.cells[g.idx(i, j, k)] }
	// slopeAt computes the limited slope along d with clamped neighbor
	// access (ghosts cover distance 1; distance 2 falls back to the ghost).
	slopeAt := func(i, j, k, d int) State {
		o := off[d]
		lo := at(clamp(i-o[0], -1, g.Nx), clamp(j-o[1], -1, g.Ny), clamp(k-o[2], -1, g.Nz))
		hi := at(clamp(i+o[0], -1, g.Nx), clamp(j+o[1], -1, g.Ny), clamp(k+o[2], -1, g.Nz))
		return limitedSlope(lo, at(i, j, k), hi)
	}
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				c := at(i, j, k)
				acc := c
				for d := 0; d < 3; d++ {
					o := off[d]
					li, lj, lk := i-o[0], j-o[1], k-o[2]
					hi, hj, hk := i+o[0], j+o[1], k+o[2]
					sC := slopeAt(i, j, k, d)
					// Minus interface: left state from the lower neighbor
					// (+slope/2), right state from this cell (-slope/2).
					var sL State
					if li >= 0 && lj >= 0 && lk >= 0 {
						sL = slopeAt(li, lj, lk, d)
					}
					fm := g.rusanov(addScaled(at(li, lj, lk), sL, 0.5), addScaled(c, sC, -0.5), d)
					// Plus interface: left from this cell (+slope/2),
					// right from the upper neighbor (-slope/2).
					var sH State
					if hi < g.Nx && hj < g.Ny && hk < g.Nz {
						sH = slopeAt(hi, hj, hk, d)
					}
					fp := g.rusanov(addScaled(c, sC, 0.5), addScaled(at(hi, hj, hk), sH, -0.5), d)
					acc.Rho -= lambda * (fp.Rho - fm.Rho)
					acc.Mx -= lambda * (fp.Mx - fm.Mx)
					acc.My -= lambda * (fp.My - fm.My)
					acc.Mz -= lambda * (fp.Mz - fm.Mz)
					acc.E -= lambda * (fp.E - fm.E)
				}
				g.scratch[g.idx(i, j, k)] = acc
			}
		}
	}
	g.cells, g.scratch = g.scratch, g.cells
}

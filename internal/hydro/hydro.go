// Package hydro implements a small three-dimensional compressible-flow
// solver: the ideal-gas Euler equations discretized with a first-order
// finite-volume scheme and Rusanov (local Lax-Friedrichs) fluxes.
//
// The paper's driving applications are compressible hydrodynamics codes
// (RM3D and the astrophysics simulations of §2). The synthetic phenomenon
// model in internal/rm3d reproduces their *adaptation trace*; this package
// goes one step further and provides an actual solver, so that Pragma's
// error flagging, regridding and partitioning can also be driven by real
// flow features (see examples/hydroamr). It is deliberately first-order
// and single-grid — a substrate, not a production CFD code — and is
// validated against the Sod shock-tube problem.
package hydro

import (
	"fmt"
	"math"
)

// State holds the conserved variables of one cell: density, momentum
// density, and total energy density.
type State struct {
	Rho, Mx, My, Mz, E float64
}

// Grid is a uniform Cartesian grid with one ghost layer per side and
// outflow (zero-gradient) boundaries.
type Grid struct {
	Nx, Ny, Nz int
	// Gamma is the ideal-gas adiabatic index.
	Gamma float64
	// Dx is the (cubic) cell size.
	Dx float64

	sx, sxy int // strides including ghosts
	cells   []State
	scratch []State
	// secondOrder selects MUSCL reconstruction (see muscl.go).
	secondOrder bool
}

// NewGrid allocates an nx x ny x nz grid with cell size dx.
func NewGrid(nx, ny, nz int, dx, gamma float64) (*Grid, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("hydro: bad extents %dx%dx%d", nx, ny, nz)
	}
	if dx <= 0 || gamma <= 1 {
		return nil, fmt.Errorf("hydro: bad dx %g or gamma %g", dx, gamma)
	}
	g := &Grid{Nx: nx, Ny: ny, Nz: nz, Gamma: gamma, Dx: dx}
	g.sx = nx + 2
	g.sxy = (nx + 2) * (ny + 2)
	n := (nx + 2) * (ny + 2) * (nz + 2)
	g.cells = make([]State, n)
	g.scratch = make([]State, n)
	return g, nil
}

// idx addresses the cell at interior coordinates (i,j,k); the ghost layer
// is reachable with -1 and N.
func (g *Grid) idx(i, j, k int) int {
	return (k+1)*g.sxy + (j+1)*g.sx + (i + 1)
}

// At returns the state of interior cell (i,j,k).
func (g *Grid) At(i, j, k int) State { return g.cells[g.idx(i, j, k)] }

// Set stores the state of interior cell (i,j,k).
func (g *Grid) Set(i, j, k int, s State) { g.cells[g.idx(i, j, k)] = s }

// Fill initializes every interior cell from the callback.
func (g *Grid) Fill(f func(i, j, k int) State) {
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				g.Set(i, j, k, f(i, j, k))
			}
		}
	}
}

// Prim converts a conserved state to primitives (density, velocity,
// pressure).
func (g *Grid) Prim(s State) (rho, u, v, w, p float64) {
	rho = s.Rho
	if rho <= 0 {
		return 0, 0, 0, 0, 0
	}
	u, v, w = s.Mx/rho, s.My/rho, s.Mz/rho
	kin := 0.5 * rho * (u*u + v*v + w*w)
	p = (g.Gamma - 1) * (s.E - kin)
	return rho, u, v, w, p
}

// Conserved builds a conserved state from primitives.
func Conserved(gamma, rho, u, v, w, p float64) State {
	return State{
		Rho: rho,
		Mx:  rho * u,
		My:  rho * v,
		Mz:  rho * w,
		E:   p/(gamma-1) + 0.5*rho*(u*u+v*v+w*w),
	}
}

// soundSpeed returns the sound speed of a state.
func (g *Grid) soundSpeed(s State) float64 {
	rho, _, _, _, p := g.Prim(s)
	if rho <= 0 || p <= 0 {
		return 0
	}
	return math.Sqrt(g.Gamma * p / rho)
}

// MaxWaveSpeed returns the largest |velocity| + sound speed over the grid.
func (g *Grid) MaxWaveSpeed() float64 {
	var max float64
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				s := g.At(i, j, k)
				rho, u, v, w, _ := g.Prim(s)
				if rho <= 0 {
					continue
				}
				speed := math.Sqrt(u*u+v*v+w*w) + g.soundSpeed(s)
				if speed > max {
					max = speed
				}
			}
		}
	}
	return max
}

// StableDt returns a CFL-stable time step.
func (g *Grid) StableDt(cfl float64) float64 {
	smax := g.MaxWaveSpeed()
	if smax <= 0 {
		return g.Dx * cfl
	}
	return cfl * g.Dx / smax
}

// applyBC fills the ghost layer with zero-gradient (outflow) copies.
func (g *Grid) applyBC() {
	for k := -1; k <= g.Nz; k++ {
		for j := -1; j <= g.Ny; j++ {
			for i := -1; i <= g.Nx; i++ {
				if i >= 0 && i < g.Nx && j >= 0 && j < g.Ny && k >= 0 && k < g.Nz {
					continue
				}
				ci := clamp(i, 0, g.Nx-1)
				cj := clamp(j, 0, g.Ny-1)
				ck := clamp(k, 0, g.Nz-1)
				g.cells[g.idx(i, j, k)] = g.cells[g.idx(ci, cj, ck)]
			}
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// flux returns the Euler flux of state s along direction d (0=x, 1=y, 2=z).
func (g *Grid) flux(s State, d int) State {
	rho, u, v, w, p := g.Prim(s)
	var vel float64
	switch d {
	case 0:
		vel = u
	case 1:
		vel = v
	default:
		vel = w
	}
	f := State{
		Rho: rho * vel,
		Mx:  s.Mx * vel,
		My:  s.My * vel,
		Mz:  s.Mz * vel,
		E:   (s.E + p) * vel,
	}
	switch d {
	case 0:
		f.Mx += p
	case 1:
		f.My += p
	default:
		f.Mz += p
	}
	return f
}

// rusanov returns the Rusanov interface flux between states l and r along
// direction d.
func (g *Grid) rusanov(l, r State, d int) State {
	fl := g.flux(l, d)
	fr := g.flux(r, d)
	sl := g.waveSpeed(l, d)
	sr := g.waveSpeed(r, d)
	smax := math.Max(sl, sr)
	return State{
		Rho: 0.5*(fl.Rho+fr.Rho) - 0.5*smax*(r.Rho-l.Rho),
		Mx:  0.5*(fl.Mx+fr.Mx) - 0.5*smax*(r.Mx-l.Mx),
		My:  0.5*(fl.My+fr.My) - 0.5*smax*(r.My-l.My),
		Mz:  0.5*(fl.Mz+fr.Mz) - 0.5*smax*(r.Mz-l.Mz),
		E:   0.5*(fl.E+fr.E) - 0.5*smax*(r.E-l.E),
	}
}

func (g *Grid) waveSpeed(s State, d int) float64 {
	rho, u, v, w, _ := g.Prim(s)
	if rho <= 0 {
		return 0
	}
	var vel float64
	switch d {
	case 0:
		vel = u
	case 1:
		vel = v
	default:
		vel = w
	}
	return math.Abs(vel) + g.soundSpeed(s)
}

// Step advances the solution by dt with an unsplit finite-volume update,
// U += -dt/dx * sum_d (F_{d,+} - F_{d,-}), at the configured spatial order.
func (g *Grid) Step(dt float64) {
	if g.secondOrder {
		g.stepSecondOrder(dt)
		return
	}
	g.applyBC()
	lambda := dt / g.Dx
	off := [3][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				c := g.cells[g.idx(i, j, k)]
				acc := c
				for d := 0; d < 3; d++ {
					o := off[d]
					lo := g.cells[g.idx(i-o[0], j-o[1], k-o[2])]
					hi := g.cells[g.idx(i+o[0], j+o[1], k+o[2])]
					fm := g.rusanov(lo, c, d)
					fp := g.rusanov(c, hi, d)
					acc.Rho -= lambda * (fp.Rho - fm.Rho)
					acc.Mx -= lambda * (fp.Mx - fm.Mx)
					acc.My -= lambda * (fp.My - fm.My)
					acc.Mz -= lambda * (fp.Mz - fm.Mz)
					acc.E -= lambda * (fp.E - fm.E)
				}
				g.scratch[g.idx(i, j, k)] = acc
			}
		}
	}
	g.cells, g.scratch = g.scratch, g.cells
}

// Advance runs steps under the given CFL number and returns the simulated
// time covered.
func (g *Grid) Advance(steps int, cfl float64) float64 {
	var t float64
	for s := 0; s < steps; s++ {
		dt := g.StableDt(cfl)
		g.Step(dt)
		t += dt
	}
	return t
}

// AdvanceTo integrates until time tEnd (the last step is shortened).
func (g *Grid) AdvanceTo(tEnd, cfl float64) int {
	t := 0.0
	steps := 0
	for t < tEnd {
		dt := g.StableDt(cfl)
		if t+dt > tEnd {
			dt = tEnd - t
		}
		g.Step(dt)
		t += dt
		steps++
		if steps > 1<<20 {
			panic("hydro: AdvanceTo runaway")
		}
	}
	return steps
}

// TotalMass returns the integrated density (cell volume factored out).
func (g *Grid) TotalMass() float64 {
	var m float64
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				m += g.At(i, j, k).Rho
			}
		}
	}
	return m
}

// SodX initializes the classic Sod shock tube along x: (rho=1, p=1) on the
// left half, (rho=0.125, p=0.1) on the right, at rest.
func SodX(g *Grid) {
	mid := g.Nx / 2
	g.Fill(func(i, j, k int) State {
		if i < mid {
			return Conserved(g.Gamma, 1, 0, 0, 0, 1)
		}
		return Conserved(g.Gamma, 0.125, 0, 0, 0, 0.1)
	})
}

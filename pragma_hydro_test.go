package pragma

import (
	"bytes"
	"testing"
)

func TestFacadeHydroPipeline(t *testing.T) {
	grid, err := NewHydroGrid(48, 8, 8, 1.0/48, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	SodShockTube(grid)
	trace, err := HydroTrace(grid, 24, 8, 0.4, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Snapshots) != 4 {
		t.Fatalf("snapshots = %d", len(trace.Snapshots))
	}
	// Solver-driven traces work with the full pipeline.
	chars, err := ClassifyTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 4 {
		t.Fatalf("characterizations = %d", len(chars))
	}
	res, err := Runtime{Trace: trace, Machine: NewCluster(4)}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestFacadeHydroConserved(t *testing.T) {
	s := HydroConserved(1.4, 1, 0, 0, 0, 1)
	if s.Rho != 1 || s.E <= 0 {
		t.Fatalf("conserved = %+v", s)
	}
}

func TestFacadeTraceIO(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Snapshots) != len(trace.Snapshots) {
		t.Fatalf("round trip lost snapshots: %d vs %d", len(got.Snapshots), len(trace.Snapshots))
	}
	// A reloaded trace replays identically.
	a, err := Runtime{Trace: trace, Machine: NewCluster(4)}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Runtime{Trace: got, Machine: NewCluster(4)}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime {
		t.Fatalf("reloaded trace replays differently: %g vs %g", a.TotalTime, b.TotalTime)
	}
}

func TestFacadeEngineEmulation(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	snap := trace.Snapshots[10]
	p, err := PartitionerByName("pBD-ISP")
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Partition(snap.H, UniformWork(), 6)
	if err != nil {
		t.Fatal(err)
	}
	center := NewMessageCenter()
	ports := make([]MessagePort, 6)
	for i := range ports {
		ports[i] = center
	}
	eng, err := NewEngine(snap.H, a, center, ports)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	// The emulation's message traffic matches the model's adjacency count:
	// every cross-processor unit pair exchanges 2 messages per step.
	if rep.TotalMessages()%(2*4) != 0 || rep.TotalMessages() == 0 {
		t.Fatalf("emulation delivered %d messages over 4 steps", rep.TotalMessages())
	}
}

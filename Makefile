# Development targets for the Pragma reproduction.

GO ?= go

.PHONY: build test test-short test-scenario test-fleet fleet-smoke preempt-smoke vet bench bench-telemetry bench-pac bench-partition bench-sched bench-serve bench-gate bench-baseline load-smoke experiments ablations extensions fmt cover clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast subset: skips the paper-scale shape tests (~20 s).
test-short: vet
	$(GO) test -short ./...

# Full suite, including the paper-scale Table 4/5 shape tests (~3 min).
test: vet
	$(GO) test ./...

# Scenario-engine property suite under the race detector: octant
# reachability, classifier/driver signature agreement, Table-2 conformance
# across the seeded corpus, and a short FuzzScenarioRun smoke.
test-scenario:
	$(GO) test -race ./internal/scenario/ ./internal/octant/
	$(GO) test -race -run 'TestScenario|ExampleParseScenario|ExampleScenarioForOctant' ./internal/experiments/ .
	$(GO) test ./internal/scenario/ -fuzz=FuzzScenarioRun -fuzztime=10s -run='^$$'

# Fleet router/worker suite under the race detector, repeated to shake
# out placement/failover orderings.
test-fleet:
	$(GO) test -race ./internal/fleet/ -count=3

# Multi-process failover rehearsal: 1 router + 3 workers over TCP,
# SIGKILL one worker mid-run, every run must still complete.
fleet-smoke:
	bash scripts/fleet_smoke.sh

# Weighted-fairness/preemption rehearsal: saturate a live pragma-node with a
# weight-1 and a weight-4 tenant, assert the completed-work ratio tracks the
# weights and that checkpoint-preempted runs all finish.
preempt-smoke:
	bash scripts/preempt_smoke.sh

# One timed regeneration of every table, figure and ablation.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Hot-path metric benchmarks (counters and histograms must stay 0 allocs/op).
bench-telemetry:
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/telemetry/

# PAC evaluation kernel benchmarks on the paper-scale hierarchy: CommPlan
# kernels vs the retained sequential reference. benchstat-friendly; pipe
# two runs through benchstat to compare.
bench-pac:
	$(GO) test -bench='EvalQuality|Adjacency|CommPlan|Migration' -benchmem -run='^$$' ./internal/partition/

# Delta-regrid partitioner benchmarks: every ISP partitioner from scratch
# vs through a warm PartitionPlan on a locality-dominated regrid delta.
bench-partition:
	$(GO) test -bench='PartitionDelta' -benchmem -run='^$$' ./internal/partition/

# Scheduler benchmarks: admission/fair-queue/worker hand-off overhead.
bench-sched:
	$(GO) test -bench='Scheduler|FairQueue|WeightedQueue' -benchmem -run='^$$' ./internal/sched/

# Serving-surface benchmarks: pooled /sched and /metrics.json encoders
# (must stay 0 allocs/op) and event-hub publish overhead.
bench-serve:
	$(GO) test -bench='Serve' -benchmem -run='^$$' ./internal/sched/ ./internal/stream/ ./internal/telemetry/

# Gate the current tree against the committed baselines, exactly as CI does
# (fails on >20% geomean ns/op regression).
bench-gate:
	$(GO) test -bench='EvalQuality|Adjacency|CommPlan|Migration' -benchmem -run='^$$' -count=6 ./internal/partition/ | $(GO) run ./cmd/benchgate -baseline BENCH_pac.json
	$(GO) test -bench='PartitionDelta' -benchmem -run='^$$' -count=6 ./internal/partition/ | $(GO) run ./cmd/benchgate -baseline BENCH_partition.json
	$(GO) test -bench='Scheduler|FairQueue|WeightedQueue' -benchmem -run='^$$' -count=6 ./internal/sched/ | $(GO) run ./cmd/benchgate -baseline BENCH_sched.json
	$(GO) test -bench='Serve' -benchmem -run='^$$' -count=6 ./internal/sched/ ./internal/stream/ ./internal/telemetry/ | $(GO) run ./cmd/benchgate -baseline BENCH_serve.json

# Refresh the committed baselines from this machine (commit the result).
bench-baseline:
	$(GO) test -bench='EvalQuality|Adjacency|CommPlan|Migration' -benchmem -run='^$$' -count=6 ./internal/partition/ | $(GO) run ./cmd/benchgate -baseline BENCH_pac.json -update
	$(GO) test -bench='PartitionDelta' -benchmem -run='^$$' -count=6 ./internal/partition/ | $(GO) run ./cmd/benchgate -baseline BENCH_partition.json -update
	$(GO) test -bench='Scheduler|FairQueue|WeightedQueue' -benchmem -run='^$$' -count=6 ./internal/sched/ | $(GO) run ./cmd/benchgate -baseline BENCH_sched.json -update
	$(GO) test -bench='Serve' -benchmem -run='^$$' -count=6 ./internal/sched/ ./internal/stream/ ./internal/telemetry/ | $(GO) run ./cmd/benchgate -baseline BENCH_serve.json -update

# Open-loop load smoke against an in-process scheduler: a short ramp must
# come back with zero errors and the submit/status p99s inside the SLO.
load-smoke:
	$(GO) run ./cmd/pragma-bench -load -qps 150 -warmup 500ms -duration 2s -slo-p99 250ms

# Print every table and figure of the paper.
experiments:
	$(GO) run ./cmd/pragma-bench -all

ablations:
	$(GO) run ./cmd/pragma-bench -ablations

extensions:
	$(GO) run ./cmd/pragma-bench -extensions

fmt:
	gofmt -w .

cover:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt

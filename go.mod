module github.com/pragma-grid/pragma

go 1.24

package pragma

import (
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	rt := Runtime{
		Trace:    trace,
		Machine:  NewCluster(8),
		Strategy: Adaptive(),
	}
	res, err := rt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.Steps == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestFacadeDefaultStrategy(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Runtime{Trace: trace, Machine: NewCluster(4)}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "adaptive" {
		t.Fatalf("default strategy = %q", res.Strategy)
	}
}

func TestFacadePartitionerLookup(t *testing.T) {
	for _, name := range []string{"SFC", "G-MISP", "G-MISP+SP", "pBD-ISP", "SP-ISP", "ISP"} {
		p, err := PartitionerByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("lookup %q failed: %v", name, err)
		}
	}
	if len(Partitioners()) != 6 {
		t.Errorf("suite size = %d", len(Partitioners()))
	}
}

func TestFacadeClassifyAndPolicy(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	chars, err := ClassifyTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != len(trace.Snapshots) {
		t.Fatalf("characterized %d of %d", len(chars), len(trace.Snapshots))
	}
	kb := Table2Policy()
	act, ok := kb.BestAction("select-partitioner", map[string]interface{}{"octant": chars[0].Octant.String()})
	if !ok || act.Target == "" {
		t.Fatalf("no policy action for octant %v", chars[0].Octant)
	}
}

func TestFacadeSystemSensitive(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Runtime{
		Trace:    trace,
		Machine:  NewLinuxCluster(8, 7),
		Strategy: SystemSensitive(),
	}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "system-sensitive" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
}

func TestFacadeProfileAndQuality(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	snap := trace.Snapshots[5]
	if p := RenderProfile(snap); !strings.Contains(p, "+") {
		t.Error("profile shows no refinement")
	}
	part, err := PartitionerByName("G-MISP+SP")
	if err != nil {
		t.Fatal(err)
	}
	a, err := part.Partition(snap.H, UniformWork(), 8)
	if err != nil {
		t.Fatal(err)
	}
	q := EvaluateQuality(snap.H, a, nil, nil)
	if q.CommVolume <= 0 || q.Overhead <= 0 {
		t.Fatalf("quality = %+v", q)
	}
}

package pragma

// Benchmarks regenerating every table and figure of the paper's evaluation.
// The TableN/FigureN benchmarks run the paper-scale experiments (tens of
// seconds per iteration; run with -benchtime=1x for a single regeneration);
// the *Small variants run the reduced configurations. See EXPERIMENTS.md
// for the paper-vs-measured record.

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/experiments"
)

func BenchmarkTable1PerformanceFunctions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable2OctantPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table2(); len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable3RM3DCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable4PartitionerComparison(b *testing.B) {
	cfg := experiments.DefaultTable4Config()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable4PartitionerComparisonSmall(b *testing.B) {
	cfg := experiments.SmallTable4Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5SystemSensitive(b *testing.B) {
	cfg := experiments.DefaultTable5Config()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable5SystemSensitiveSmall(b *testing.B) {
	cfg := experiments.SmallTable5Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2OctantOccupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure3ProfileViews(b *testing.B) {
	for i := 0; i < b.N; i++ {
		profiles, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if len(profiles) != 8 {
			b.Fatalf("profiles = %d", len(profiles))
		}
	}
}

func BenchmarkFigure4CapacityPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks (DESIGN.md §6) on the reduced configuration.

func BenchmarkAblationCurves(b *testing.B) {
	cfg := RM3DSmall()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCurves(cfg, 16, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSplitters(b *testing.B) {
	cfg := RM3DSmall()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSplitters(cfg, 16, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationForecasters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationForecasters(16, 400, 2002); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationProcSweep(b *testing.B) {
	cfg := RM3DSmall()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationProcSweep(cfg, []int{4, 8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCapacityWeights(b *testing.B) {
	cfg := RM3DSmall()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCapacityWeights(cfg, 8, 2002); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationManagement(b *testing.B) {
	cfg := RM3DSmall()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationManagement(cfg, 8, 2002); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRM3DTraceGeneration times the paper-scale trace generation that
// underlies Tables 3-5 and Figures 2-3.
func BenchmarkRM3DTraceGeneration(b *testing.B) {
	cfg := RM3DPaper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateRM3D(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveReplaySmall times a full adaptive replay on the reduced
// configuration — the end-to-end hot path of the public API.
func BenchmarkAdaptiveReplaySmall(b *testing.B) {
	cfg := RM3DSmall()
	trace, err := GenerateRM3D(cfg)
	if err != nil {
		b.Fatal(err)
	}
	machine := NewCluster(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Runtime{Trace: trace, Machine: machine, WorkModel: cfg.WorkModel}).Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

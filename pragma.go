// Package pragma is an adaptive runtime infrastructure for grid
// applications, reproducing the system described in "Pragma: An
// Infrastructure for Runtime Management of Grid Applications" (Parashar &
// Hariri, IPDPS 2002).
//
// Pragma reactively and proactively manages the execution of dynamically
// adaptive (SAMR) applications: it characterizes the application's state
// with the octant approach, characterizes the system with NWS-style
// monitoring and predictive performance functions, selects partitioning
// strategies at runtime through a programmable policy knowledge base, and
// coordinates adaptation through an agent-based control network.
//
// The package is a facade over the implementation packages; the
// runnable entry point is the Runtime type:
//
//	trace, _ := pragma.GenerateRM3D(pragma.RM3DSmall())
//	rt := pragma.Runtime{
//		Trace:    trace,
//		Machine:  pragma.NewCluster(16),
//		Strategy: pragma.Adaptive(),
//	}
//	result, _ := rt.Execute()
//	fmt.Printf("simulated runtime: %.1fs\n", result.TotalTime)
package pragma

import (
	"context"
	"io"
	"net"
	"net/http"
	"time"

	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/astro"
	"github.com/pragma-grid/pragma/internal/chaos"
	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/engine"
	"github.com/pragma-grid/pragma/internal/fleet"
	"github.com/pragma-grid/pragma/internal/hydro"
	"github.com/pragma-grid/pragma/internal/loadgen"
	"github.com/pragma-grid/pragma/internal/monitor"
	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/perf"
	"github.com/pragma-grid/pragma/internal/policy"
	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/scenario"
	"github.com/pragma-grid/pragma/internal/sched"
	"github.com/pragma-grid/pragma/internal/stream"
	"github.com/pragma-grid/pragma/internal/telemetry"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the public names.
type (
	// Box is a half-open axis-aligned region of a grid index space.
	Box = samr.Box
	// Point is a 3-D integer index.
	Point = samr.Point
	// Hierarchy is an SAMR grid hierarchy.
	Hierarchy = samr.Hierarchy
	// Snapshot is one regrid-step capture of a hierarchy.
	Snapshot = samr.Snapshot
	// Trace is an application adaptation trace.
	Trace = samr.Trace
	// WorkModel weighs grid regions by computational cost.
	WorkModel = samr.WorkModel

	// Octant is one of the eight application-state octants (Fig. 2).
	Octant = octant.Octant
	// OctantState is the measured application state.
	OctantState = octant.State
	// OctantThresholds configure the octant classifier.
	OctantThresholds = octant.Thresholds

	// Partitioner distributes a hierarchy across processors.
	Partitioner = partition.Partitioner
	// Assignment maps grid units to processors.
	Assignment = partition.Assignment
	// Quality is the five-component PAC metric of a partitioning.
	Quality = partition.Quality
	// CommPlan is a cached communication plan: one rasterization of an
	// assignment shared by quality evaluation, migration diffs, and engine
	// construction.
	CommPlan = partition.CommPlan
	// CommStats aggregates an assignment's communication requirement.
	CommStats = partition.CommStats
	// UnitPair is one cross-processor ghost-exchange adjacency.
	UnitPair = partition.UnitPair

	// Cluster is a simulated execution environment.
	Cluster = cluster.Cluster
	// CostModel converts grid quantities into seconds.
	CostModel = cluster.CostModel

	// PolicyBase is the programmable adaptation policy knowledge base.
	PolicyBase = policy.Base
	// PolicyRule is one adaptation policy.
	PolicyRule = policy.Rule
	// PolicyAction is what a matched rule prescribes.
	PolicyAction = policy.Action

	// MetaPartitioner selects partitioners from octant state (§4).
	MetaPartitioner = core.MetaPartitioner
	// Strategy decides how each regrid point is partitioned.
	Strategy = core.Strategy
	// RunResult is the execution profile of a replayed run.
	RunResult = core.RunResult

	// CapacityWeights weight CPU/memory/bandwidth in the relative-capacity
	// formula (Fig. 4).
	CapacityWeights = monitor.Weights

	// RM3DConfig parameterizes the synthetic RM3D application.
	RM3DConfig = rm3d.Config

	// Message is the unit of communication in the agent control network.
	Message = agents.Message
	// MessageCenter is the CATALINA-style broker owning agent mailboxes.
	MessageCenter = agents.Center
	// MessagePort is the communication capability agents speak (in-process
	// Center or TCP Client).
	MessagePort = agents.Port
	// AgentClient is a TCP connection to a remote MessageCenter.
	AgentClient = agents.Client
	// ComponentAgent monitors one application component.
	ComponentAgent = agents.ComponentAgent
	// ADM is the application delegated manager.
	ADM = agents.ADM
	// Sensor samples one application or system attribute.
	Sensor = agents.Sensor
	// SensorFunc adapts a function to Sensor.
	SensorFunc = agents.SensorFunc
	// Actuator applies one adaptation mechanism.
	Actuator = agents.Actuator
	// ActuatorFunc adapts a function to Actuator.
	ActuatorFunc = agents.ActuatorFunc
	// EventRule publishes an event on a sensed threshold crossing.
	EventRule = agents.EventRule
	// Command is an actuation directive.
	Command = agents.Command
	// ADMEvent is a threshold event as seen by the ADM.
	ADMEvent = agents.Event
	// Template is an execution-environment blueprint.
	Template = agents.Template
	// TemplateRegistry stores and discovers templates.
	TemplateRegistry = agents.Registry

	// DialOption configures DialMessageCenter (reconnect, heartbeats,
	// deadlines, error handlers, chaos dialers).
	DialOption = agents.DialOption
	// CenterOption configures NewMessageCenter's wire behavior (liveness
	// eviction, write deadlines).
	CenterOption = agents.CenterOption
	// ClientStats counts an AgentClient's failure-path events.
	ClientStats = agents.ClientStats
	// ChaosConfig parameterizes deterministic fault injection on control-
	// network connections (latency, jitter, drops, corruption).
	ChaosConfig = chaos.Config
	// AgentManagedStrategy is the agent-managed adaptation strategy with a
	// live control network and degraded-mode fallback.
	AgentManagedStrategy = core.AgentManaged

	// HydroGrid is a uniform grid of the built-in compressible-flow solver.
	HydroGrid = hydro.Grid
	// HydroState holds one cell's conserved variables.
	HydroState = hydro.State

	// Engine executes a partitioned hierarchy as a real message-passing
	// program over the Message Center (see internal/engine).
	Engine = engine.Engine
	// EngineReport summarizes an emulated distributed run.
	EngineReport = engine.Report
	// EngineOption configures an Engine (step deadlines, port namespacing,
	// fault injection).
	EngineOption = engine.Option
	// EngineLostWorkers is the error an engine run fails with when workers
	// miss a step deadline; Missing lists the lost processor ids.
	EngineLostWorkers = engine.LostWorkersError

	// PF is a performance function (§3.2).
	PF = perf.PF
	// SerialPF composes PFs of serially traversed components (Eq. 2).
	SerialPF = perf.Serial
	// ParallelPF composes PFs of concurrent components.
	ParallelPF = perf.Parallel
	// SystemComponent is a measurable component of the PF example system.
	SystemComponent = perf.Component
)

// RM3DPaper returns the paper's RM3D configuration: 128x32x32 base grid,
// 3 levels of factor-2 refinement, regridding every 4 steps, 800+ coarse
// steps (202 trace snapshots).
func RM3DPaper() RM3DConfig { return rm3d.DefaultConfig() }

// RM3DSmall returns a reduced RM3D configuration suitable for quick runs
// and tests.
func RM3DSmall() RM3DConfig { return rm3d.SmallConfig() }

// GenerateRM3D produces the RM3D adaptation trace for a configuration.
func GenerateRM3D(cfg RM3DConfig) (*Trace, error) { return rm3d.GenerateTrace(cfg) }

// RenderProfile renders a snapshot's refinement structure as ASCII art
// (the content of the paper's Fig. 3).
func RenderProfile(s Snapshot) string { return rm3d.Profile(s) }

// Scenario aliases. The implementation lives in internal/scenario; see
// DESIGN.md §13 for the driver library and the octant-signature contract.
type (
	// ScenarioSpec is a composed synthetic workload: a grid envelope plus
	// a phase script of refinement drivers, generating a Trace exactly
	// like GenerateRM3D does.
	ScenarioSpec = scenario.Spec
	// ScenarioPhase is one segment of a scenario: a driver mix active for
	// a number of regrid snapshots, with a declared expected octant.
	ScenarioPhase = scenario.Phase
	// ScenarioDriver is one phenomenon ingredient (moving shock, point
	// source, merging fronts, scattered activity, background noise).
	ScenarioDriver = scenario.Driver
	// ScenarioSignature is the octant signature a driver declares.
	ScenarioSignature = scenario.Signature
	// ScenarioActivity is a driver's dynamics dial (ScenarioLow/High).
	ScenarioActivity = scenario.Activity
)

// Scenario activity dials.
const (
	ScenarioLow  = scenario.Low
	ScenarioHigh = scenario.High
)

// DefaultScenario returns the standard scenario envelope (48x24x24 base
// grid, 3 levels, regrid every 4 steps); attach phases and a seed.
func DefaultScenario() ScenarioSpec { return scenario.Default() }

// ParseScenario parses the compact scenario grammar, e.g.
// "dims=48x24x24;seed=7;shock:8,block:6,I:4" — see internal/scenario's
// ParseSpec for the full grammar. The same strings drive the -scenario
// flags of pragma-node and pragma-bench.
func ParseScenario(s string) (ScenarioSpec, error) { return scenario.ParseSpec(s) }

// GenerateScenario produces the adaptation trace of a composed scenario.
func GenerateScenario(spec ScenarioSpec) (*Trace, error) { return spec.Generate() }

// ScenarioForOctant returns the canonical driver engineered to occupy the
// given octant — every octant I-VIII has one.
func ScenarioForOctant(o Octant) ScenarioDriver { return scenario.ForOctant(o) }

// Scenario driver constructors, re-exported from internal/scenario.
var (
	ScenarioSheet         = scenario.Sheet
	ScenarioSheetField    = scenario.SheetField
	ScenarioBlock         = scenario.Block
	ScenarioBlobField     = scenario.BlobField
	ScenarioPointSource   = scenario.PointSource
	ScenarioMergingFronts = scenario.MergingFronts
	ScenarioBackground    = scenario.Background
)

// AstroConfig parameterizes the galaxy-formation and supernova application
// models (the other two driver applications of the paper's §2).
type AstroConfig = astro.Config

// AstroDefault returns the standard astro application configuration.
func AstroDefault() AstroConfig { return astro.DefaultConfig() }

// AstroSmall returns a reduced astro configuration for quick runs.
func AstroSmall() AstroConfig { return astro.SmallConfig() }

// GenerateGalaxy produces a hierarchical galaxy-formation adaptation trace
// with the given number of initial halos.
func GenerateGalaxy(cfg AstroConfig, halos int) (*Trace, error) {
	return astro.GenerateTrace(cfg, astro.NewGalaxy(cfg, halos))
}

// GenerateSupernova produces an aspherical supernova adaptation trace.
func GenerateSupernova(cfg AstroConfig) (*Trace, error) {
	return astro.GenerateTrace(cfg, astro.NewSupernova(cfg))
}

// NewHydroGrid allocates a grid for the built-in first-order Euler solver.
func NewHydroGrid(nx, ny, nz int, dx, gamma float64) (*HydroGrid, error) {
	return hydro.NewGrid(nx, ny, nz, dx, gamma)
}

// HydroConserved builds a conserved state from primitive variables.
func HydroConserved(gamma, rho, u, v, w, p float64) HydroState {
	return hydro.Conserved(gamma, rho, u, v, w, p)
}

// SodShockTube initializes the classic Sod problem along x.
func SodShockTube(g *HydroGrid) { hydro.SodX(g) }

// HydroTrace advances the solver and captures a hierarchy snapshot every
// regridEvery steps, using gradient error flagging and Berger–Rigoutsos
// clustering — an adaptation trace produced by a real solver.
func HydroTrace(g *HydroGrid, steps, regridEvery int, cfl, flagThreshold float64) (*Trace, error) {
	return hydro.TraceRun(g, steps, regridEvery, cfl, flagThreshold, samr.DefaultClusterOptions())
}

// WriteTrace serializes an adaptation trace as line-delimited JSON.
func WriteTrace(w io.Writer, tr *Trace) error { return samr.WriteTrace(w, tr) }

// ReadTrace deserializes a trace written by WriteTrace, validating every
// hierarchy.
func ReadTrace(r io.Reader) (*Trace, error) { return samr.ReadTrace(r) }

// UniformWork returns the default work model: every cell costs one unit,
// scaled by the level's MIT sub-cycling factor.
func UniformWork() WorkModel { return samr.UniformWorkModel{} }

// PartitionerByName returns a partitioner from the suite the paper
// evaluates: "SFC", "G-MISP", "G-MISP+SP", "pBD-ISP", "SP-ISP", "ISP",
// "EqualBlock" or "Heterogeneous".
func PartitionerByName(name string) (Partitioner, error) { return partition.ByName(name) }

// Partitioners returns the full ISP partitioner suite.
func Partitioners() []Partitioner { return partition.All() }

// EvaluateQuality computes the PAC quality metric of an assignment;
// prevH/prev may be nil when there is no previous placement.
func EvaluateQuality(h *Hierarchy, a *Assignment, prevH *Hierarchy, prev *Assignment) Quality {
	return partition.EvalQuality(h, a, prevH, prev, 0)
}

// BuildCommPlan rasterizes an assignment once and runs the fused
// single-pass communication sweep, returning the plan that quality
// evaluation, migration diffs (CommPlan.MigrationFrom), and engine
// construction (NewEngineFromPlan) all share. Build it once per
// assignment instead of calling EvaluateQuality and NewEngine separately.
func BuildCommPlan(h *Hierarchy, a *Assignment) *CommPlan {
	return partition.BuildCommPlan(h, a)
}

// Table2Policy returns the paper's Table 2 octant-to-partitioner policy
// knowledge base.
func Table2Policy() *PolicyBase { return policy.Table2() }

// NewMetaPartitioner returns the paper's adaptive meta-partitioner:
// Table 2 policies over octant characterization.
func NewMetaPartitioner() *MetaPartitioner { return core.NewMetaPartitioner() }

// ClassifyTrace characterizes every snapshot of a trace into octants.
func ClassifyTrace(tr *Trace) ([]octant.Characterization, error) {
	return octant.CharacterizeTrace(tr, octant.DefaultThresholds(), 3)
}

// NewCluster builds a homogeneous n-node machine with the calibrated
// SP2-like defaults used by the Table 4 experiments.
func NewCluster(n int) *Cluster { return cluster.SP2(n) }

// NewLinuxCluster builds the Table 5 machine: n workstation nodes on fast
// Ethernet with a deterministic synthetic background load.
func NewLinuxCluster(n int, loadSeed int64) *Cluster { return cluster.LinuxCluster(n, loadSeed) }

// Static returns a strategy applying one fixed partitioner at every regrid.
func Static(p Partitioner) Strategy { return core.Static{P: p} }

// Adaptive returns the application-sensitive meta-partitioning strategy
// with the quality guard enabled (see core.Adaptive).
func Adaptive() Strategy { return core.Adaptive{ImbalanceGuard: 20} }

// SystemSensitive returns the strategy of §4.6: capacity-weighted
// partitioning driven by resource monitoring.
func SystemSensitive() Strategy { return &core.SystemSensitive{} }

// Proactive returns the predictive variant of system-sensitive
// partitioning: capacities come from the NWS meta-forecaster's prediction
// of the next resource state (§3.1's proactive management).
func Proactive() Strategy { return &core.Proactive{} }

// FailureAware wraps a strategy with fail-stop tolerance: dead nodes are
// detected at each regrid and work is redistributed across survivors.
func FailureAware(inner Strategy) Strategy { return &core.FailureAware{Inner: inner} }

// NewMessageCenter creates an empty agent Message Center. Serve TCP
// clients with (*MessageCenter).Serve to emulate a multi-node control
// network. Options arm server-side robustness: WithHeartbeatTimeout
// evicts silent clients, WithCenterWriteTimeout bounds wire writes.
func NewMessageCenter(opts ...CenterOption) *MessageCenter { return agents.NewCenter(opts...) }

// DialMessageCenter connects to a Message Center served over TCP. Options
// harden the link: WithReconnect replays registrations and buffered sends
// after an outage, WithHeartbeat detects dead brokers, WithErrorHandler
// receives asynchronous failures, WithDialer plugs in ChaosDialer.
func DialMessageCenter(addr string, opts ...DialOption) (*AgentClient, error) {
	return agents.Dial(addr, opts...)
}

// Client/Center option constructors, re-exported from internal/agents.
var (
	WithDialer             = agents.WithDialer
	WithReconnect          = agents.WithReconnect
	WithBackoff            = agents.WithBackoff
	WithMaxRetries         = agents.WithMaxRetries
	WithHeartbeat          = agents.WithHeartbeat
	WithWriteTimeout       = agents.WithWriteTimeout
	WithOpTimeout          = agents.WithOpTimeout
	WithSendBuffer         = agents.WithSendBuffer
	WithErrorHandler       = agents.WithErrorHandler
	WithSeed               = agents.WithSeed
	WithHeartbeatTimeout   = agents.WithHeartbeatTimeout
	WithCenterWriteTimeout = agents.WithCenterWriteTimeout
	WithCenterErrorHandler = agents.WithCenterErrorHandler
)

// ChaosDialer returns a TCP dialer injecting deterministic faults; pass it
// to DialMessageCenter via WithDialer to chaos-test a control network.
func ChaosDialer(cfg ChaosConfig) func(addr string) (net.Conn, error) { return chaos.Dialer(cfg) }

// WrapChaosListener wraps a listener so every accepted connection draws
// faults from one seeded stream — chaos injection on the broker side.
func WrapChaosListener(ln net.Listener, cfg ChaosConfig) net.Listener {
	return chaos.WrapListener(ln, cfg)
}

// WrapChaosConn wraps a single connection with its own fault injector.
func WrapChaosConn(c net.Conn, cfg ChaosConfig) net.Conn { return chaos.Wrap(c, cfg) }

// NewAgentManaged returns the §4.7 agent-managed adaptation strategy on an
// in-process control network: node agents gate repartitioning on threshold
// events instead of repartitioning at every regrid.
func NewAgentManaged(nprocs int, imbalanceEventPct float64) (*AgentManagedStrategy, error) {
	return core.NewAgentManaged(nprocs, imbalanceEventPct)
}

// NewAgentManagedOn is NewAgentManaged over caller-supplied ports: the ADM
// registers on admPort and one component agent per node port (e.g. TCP
// clients of a served MessageCenter). Set the strategy's Health field —
// typically over AgentClient.Degraded — to enable degraded-mode fallback
// when the control network partitions.
func NewAgentManagedOn(admPort MessagePort, nodePorts []MessagePort, imbalanceEventPct float64) (*AgentManagedStrategy, error) {
	return core.NewAgentManagedOn(admPort, nodePorts, imbalanceEventPct)
}

// NewComponentAgent registers a component agent on the port with its
// sensors, actuators and threshold event rules.
func NewComponentAgent(id string, port MessagePort, sensors []Sensor, actuators []Actuator, rules []EventRule) (*ComponentAgent, error) {
	return agents.NewComponentAgent(id, port, sensors, actuators, rules)
}

// NewADM registers an application delegated manager on the port, driven by
// the given policy knowledge base.
func NewADM(id string, port MessagePort, kb *PolicyBase) (*ADM, error) {
	return agents.NewADM(id, port, kb)
}

// NewTemplateRegistry creates an empty execution-environment template
// registry.
func NewTemplateRegistry() *TemplateRegistry { return agents.NewRegistry() }

// NewEngine wires a distributed-execution emulation of the assignment:
// one worker per processor on the given ports (the same MessageCenter for
// an in-process run, or TCP clients for multi-node emulation), exchanging
// real ghost messages each step. Pass WithStepDeadline to bound every
// barrier wait so a crashed worker fails the run with EngineLostWorkers
// instead of hanging it.
func NewEngine(h *Hierarchy, a *Assignment, coordOn MessagePort, ports []MessagePort, opts ...EngineOption) (*Engine, error) {
	return engine.New(h, a, coordOn, ports, opts...)
}

// NewEngineFromPlan is NewEngine over an already-built communication plan,
// reusing its adjacency instead of re-sweeping the hierarchy.
func NewEngineFromPlan(plan *CommPlan, coordOn MessagePort, ports []MessagePort, opts ...EngineOption) (*Engine, error) {
	return engine.NewFromPlan(plan, coordOn, ports, opts...)
}

// Engine option constructors, re-exported from internal/engine.
// WithStepDeadline bounds each worker/coordinator barrier wait;
// WithEnginePortSuffix namespaces the engine's mailboxes so a recovery
// engine can share the Message Center with a failed one.
var (
	WithStepDeadline     = engine.WithStepDeadline
	WithEnginePortSuffix = engine.WithPortSuffix
)

// RemapOntoSurvivors renumbers an assignment's processors onto the workers
// that survived a lost-worker failure, spreading orphaned grid units
// least-loaded-first. The returned slice maps new processor ids to the
// original ones.
func RemapOntoSurvivors(a *Assignment, dead []int) (*Assignment, []int, error) {
	return engine.RemapOntoSurvivors(a, dead)
}

// RunEngineRecovering drives build/Run cycles until an engine run
// completes, retrying at most maxRetries times after lost-worker failures.
// build receives the attempt number and the processor ids (in the previous
// attempt's numbering) that were lost.
func RunEngineRecovering(steps, maxRetries int, build func(attempt int, lost []int) (*Engine, error)) (EngineReport, int, error) {
	return engine.RunRecovering(steps, maxRetries, build)
}

// PFExampleSystem returns the paper's PC1 -> switch -> PC2 pipeline used
// to illustrate performance functions (§3.2, Table 1).
func PFExampleSystem(noise float64) []SystemComponent { return perf.ExampleSystem(noise) }

// FitPerformanceFunctions measures every component of a pipeline at the
// given data sizes, fits one neural PF per component, and returns the
// composed end-to-end PF (Eq. 2) plus the per-component PFs.
func FitPerformanceFunctions(comps []SystemComponent, sizes []float64, samplesPerSize int, seed int64) (SerialPF, []PF, error) {
	return perf.FitComponentPFs(comps, sizes, samplesPerSize, seed)
}

// Runtime executes an application's adaptation trace on a simulated
// machine under a partitioning strategy — the top-level use of Pragma.
type Runtime struct {
	// Trace is the application adaptation trace to replay (required).
	Trace *Trace
	// Machine is the execution environment (required).
	Machine *Cluster
	// Strategy picks partitionings at regrid points; nil means Adaptive().
	Strategy Strategy
	// NProcs restricts the run to the first n processors (0 = all).
	NProcs int
	// WorkModel supplies per-snapshot region weights; nil means uniform.
	WorkModel func(idx int) WorkModel
	// Cost overrides the machine cost model (zero value = defaults).
	Cost CostModel
}

// RunOption configures one Execute call (checkpointing, resume).
type RunOption func(*core.RunConfig)

// WithCheckpointDir persists run state to dir at regrid boundaries.
// Checkpoints are CRC-verified and written atomically; a later Execute
// with WithResume continues from the newest valid one.
func WithCheckpointDir(dir string) RunOption {
	return func(c *core.RunConfig) { c.CheckpointDir = dir }
}

// WithCheckpointEvery checkpoints after every k-th regrid interval
// instead of every interval.
func WithCheckpointEvery(k int) RunOption {
	return func(c *core.RunConfig) { c.CheckpointEvery = k }
}

// WithCheckpointKeep bounds retained checkpoint files (negative keeps all).
func WithCheckpointKeep(n int) RunOption {
	return func(c *core.RunConfig) { c.CheckpointKeep = n }
}

// WithResume restarts from the latest valid checkpoint in the checkpoint
// directory; corrupted checkpoints are skipped, and with no usable one the
// run starts from the beginning. The final result is identical to an
// uninterrupted run's.
func WithResume() RunOption {
	return func(c *core.RunConfig) { c.Resume = true }
}

// WithInterrupt stops the run at the next regrid boundary once ch is
// closed: with checkpointing configured the loop state is persisted first,
// and Execute fails with an error wrapping ErrRunInterrupted. This is the
// graceful-drain hook (the Scheduler wires it for every run it manages).
func WithInterrupt(ch <-chan struct{}) RunOption {
	return func(c *core.RunConfig) { c.Interrupt = ch }
}

// ErrRunInterrupted is the sentinel an interrupted Execute fails with
// (test with errors.Is); the run is resumable via WithResume.
var ErrRunInterrupted = core.ErrInterrupted

// RunInterruptedError is the concrete error an interrupted Execute returns
// (extract with errors.As): it wraps ErrRunInterrupted and records the
// resume point and the intervals this attempt completed, which is how the
// Scheduler charges exact progress when it preempts a run.
type RunInterruptedError = core.InterruptedError

// Execute replays the trace and returns the execution profile.
func (r Runtime) Execute(opts ...RunOption) (*RunResult, error) {
	strat := r.Strategy
	if strat == nil {
		strat = Adaptive()
	}
	cfg := core.RunConfig{
		Machine:   r.Machine,
		Cost:      r.Cost,
		NProcs:    r.NProcs,
		WorkModel: r.WorkModel,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.Run(r.Trace, strat, cfg)
}

// Telemetry aliases. The implementation lives in internal/telemetry; see
// DESIGN.md §10 for the metric naming conventions and the trace schema.
type (
	// TelemetryRegistry is a concurrency-safe metrics registry (counters,
	// gauges, histograms) with Prometheus text exposition.
	TelemetryRegistry = telemetry.Registry
	// TelemetryTracer records regrid cycles as structured traces in a
	// bounded ring.
	TelemetryTracer = telemetry.Tracer
	// TelemetryServer is a running telemetry HTTP endpoint.
	TelemetryServer = telemetry.Server
	// TelemetrySnapshot is a point-in-time JSON view of a registry.
	TelemetrySnapshot = telemetry.Snapshot
)

// Telemetry returns the process-global metrics registry every instrumented
// layer (engine, agents, core, checkpoint, monitor) records into.
func Telemetry() *TelemetryRegistry { return telemetry.Default }

// RegridTraces returns the process-global tracer holding the most recent
// regrid-cycle traces.
func RegridTraces() *TelemetryTracer { return telemetry.DefaultTracer }

// ServeTelemetry starts an HTTP server on addr exposing the global registry
// and tracer: /metrics (Prometheus text), /metrics.json (snapshot),
// /healthz, and /debug/pragma (regrid traces as JSONL). Close the returned
// server when done.
func ServeTelemetry(addr string) (*TelemetryServer, error) {
	return telemetry.Serve(addr, telemetry.Default, telemetry.DefaultTracer, nil)
}

// RegisterQueueDepthGauge exposes a Message Center's aggregate mailbox
// depth as the pragma_agents_queue_depth gauge, sampled at scrape time.
func RegisterQueueDepthGauge(c *MessageCenter) { agents.RegisterQueueDepthGauge(c) }

// Scheduler aliases. The implementation lives in internal/sched; see
// DESIGN.md §12 for the admission, fairness and drain semantics.
type (
	// Scheduler is the multi-tenant run scheduler: many concurrent runs
	// through one bounded worker pool, with admission control, weighted
	// max-min fairness across tenants, checkpoint-based preemption,
	// per-run isolation, and graceful drain.
	Scheduler = sched.Scheduler
	// SchedulerConfig sizes a Scheduler (pool, queue and tenant limits).
	SchedulerConfig = sched.Config
	// SchedulerRunSpec describes one run to execute: the Runtime inputs
	// plus the checkpoint configuration that makes the run drainable.
	SchedulerRunSpec = sched.RunSpec
	// SchedulerSubmission is one admission attempt (tenant, priority,
	// fair-share weight, spec).
	SchedulerSubmission = sched.SubmitRequest
	// SchedulerRunStatus is the externally visible snapshot of one run.
	SchedulerRunStatus = sched.RunStatus
	// SchedulerStats is a point-in-time aggregate view of a Scheduler.
	SchedulerStats = sched.Stats
	// SchedulerSpecBuilder maps submit-request wire parameters to run specs
	// for the HTTP API.
	SchedulerSpecBuilder = sched.SpecBuilder
)

// Scheduler admission errors — the backpressure surface Submit rejects
// with (test with errors.Is).
var (
	ErrSchedulerSaturated   = sched.ErrSaturated
	ErrSchedulerTenantLimit = sched.ErrTenantLimit
	ErrSchedulerDraining    = sched.ErrDraining
)

// NewScheduler starts a run scheduler with cfg.Workers pool goroutines.
// Stop it with Drain (graceful: in-flight runs checkpoint at their next
// regrid boundary and report as resumable) or Close.
func NewScheduler(cfg SchedulerConfig) *Scheduler { return sched.New(cfg) }

// NewSchedulerHandler exposes a scheduler's submit/status/runs/stats/drain
// endpoints under /sched/, designed to be mounted next to the telemetry
// routes; build maps submit parameters to run specs (nil disables submit).
func NewSchedulerHandler(s *Scheduler, build SchedulerSpecBuilder) http.Handler {
	return sched.Handler(s, build)
}

// Fleet aliases. The implementation lives in internal/fleet; see
// DESIGN.md §14. A fleet shards scheduler runs across many pragma-node
// worker processes over the agents control network, with capacity-aware
// placement and checkpoint-resume failover when workers are lost.
type (
	// FleetRouter places submitted runs on fleet workers and fails them
	// over to survivors when a worker goes silent or its link drops.
	FleetRouter = fleet.Router
	// FleetRouterConfig sizes a FleetRouter (heartbeat window, dispatch
	// deadline, retry/backoff/breaker knobs, local fallback pool).
	FleetRouterConfig = fleet.Config
	// FleetWorker executes dispatched runs and advertises forecast
	// capacity in heartbeats.
	FleetWorker = fleet.Worker
	// FleetWorkerConfig sizes a FleetWorker (identity, slots, heartbeat).
	FleetWorkerConfig = fleet.WorkerConfig
	// FleetWireSpec is the run description that crosses the control
	// network: names and numbers only, materialized identically wherever
	// the run lands.
	FleetWireSpec = fleet.WireSpec
	// FleetRunStatus is the externally visible snapshot of one fleet run.
	FleetRunStatus = fleet.RunStatus
	// FleetStats is a point-in-time aggregate view of a FleetRouter.
	FleetStats = fleet.Stats
	// FleetWorkerInfo is the router's view of one worker.
	FleetWorkerInfo = fleet.WorkerInfo
)

// NewFleetRouter starts a fleet router over the given control-network
// port (typically a MessageCenter the same process serves).
func NewFleetRouter(cfg FleetRouterConfig) (*FleetRouter, error) { return fleet.NewRouter(cfg) }

// NewFleetWorker joins the fleet as a worker executing dispatched runs
// (cfg.Port is typically a DialMessageCenter client).
func NewFleetWorker(cfg FleetWorkerConfig) (*FleetWorker, error) { return fleet.NewWorker(cfg) }

// NewFleetHandler exposes a fleet router over HTTP with the same /sched/
// surface a single-node scheduler serves, plus /sched/fleet; a non-empty
// checkpointRoot defaults every run to a resumable checkpoint directory
// under it.
func NewFleetHandler(r *FleetRouter, checkpointRoot string) http.Handler {
	return fleet.Handler(r, checkpointRoot)
}

// Run-event streaming aliases. The implementation lives in
// internal/stream; see DESIGN.md §15. A hub broadcasts per-run lifecycle
// and regrid-cycle events to bounded subscribers; wire one into
// SchedulerConfig.Events or FleetRouterConfig.Events and clients can
// follow runs over /sched/events (SSE with a long-poll fallback) instead
// of polling /sched/status.
type (
	// RunEvent is one run lifecycle or regrid-cycle event.
	RunEvent = stream.Event
	// RunEventHub fans events out to subscribers without ever blocking
	// the publisher; slow subscribers drop events and are marked lagging.
	RunEventHub = stream.Hub
	// RunEventHubConfig sizes a hub's per-subscriber buffers and per-run
	// replay history.
	RunEventHubConfig = stream.Config
	// RunEventSub is one subscription; receive on C, check Dropped.
	RunEventSub = stream.Sub
)

// NewRunEventHub creates an event hub (zero config = sensible defaults).
func NewRunEventHub(cfg RunEventHubConfig) *RunEventHub { return stream.NewHub(cfg) }

// NewRunEventsHandler serves a hub over HTTP: Server-Sent Events by
// default, JSON long-poll with ?poll=1.
func NewRunEventsHandler(h *RunEventHub) http.Handler {
	return stream.Handler(h, stream.HandlerConfig{})
}

// Load-generation aliases. The implementation lives in internal/loadgen:
// an open-loop QPS harness for the /sched serving surface whose latencies
// count from intended arrival times (no coordinated omission) and whose
// report derives percentiles from telemetry histograms.
type (
	// LoadConfig parameterizes one load run (target, stages, worker pool).
	LoadConfig = loadgen.Config
	// LoadStage is one rung of the open-loop schedule.
	LoadStage = loadgen.Stage
	// LoadReport is the client-side result: per-endpoint p50/p95/p99,
	// throughput, errors and backpressure counts.
	LoadReport = loadgen.Report
	// LoadEndpointReport is one endpoint's slice of the report.
	LoadEndpointReport = loadgen.EndpointReport
)

// RunLoad executes an open-loop load run against cfg.BaseURL.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	return loadgen.Run(ctx, cfg)
}

// LoadRamp builds the common warmup-then-measure stage schedule.
func LoadRamp(peakQPS float64, warmup, duration time.Duration) []LoadStage {
	return loadgen.Ramp(peakQPS, warmup, duration)
}

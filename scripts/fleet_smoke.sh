#!/usr/bin/env bash
# fleet_smoke.sh — multi-process fleet failover rehearsal.
#
# Boots a real fleet (1 router owning the message center, 3 worker
# processes over TCP), submits runs slowed enough to stay in flight,
# SIGKILLs the worker executing the first run mid-flight, and requires:
#   * every submitted run still completes (state done),
#   * the failover counter says at least one run moved to a survivor,
#   * the eviction counter says the kill was noticed,
#   * a graceful fleet drain shuts every process down.
#
# Usage: scripts/fleet_smoke.sh [bind-host]
set -euo pipefail

HOST=${1:-127.0.0.1}
CTRL_PORT=17070
HTTP_PORT=19193
BASE="http://$HOST:$HTTP_PORT"
RUNS=3

WORK=$(mktemp -d)
BIN="$WORK/pragma-node"
declare -A WORKER_PID

cleanup() {
  for pid in "${WORKER_PID[@]-}" "${ROUTER_PID-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

json() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

echo "== build"
go build -o "$BIN" ./cmd/pragma-node

echo "== start router"
"$BIN" -serve "$HOST:$CTRL_PORT" -fleet -telemetry-addr "$HOST:$HTTP_PORT" \
  -fleet-checkpoint-root "$WORK/runs" -heartbeat-timeout 2s \
  >"$WORK/router.log" 2>&1 &
ROUTER_PID=$!

for i in $(seq 1 60); do
  if ! kill -0 "$ROUTER_PID" 2>/dev/null; then
    echo "router exited before serving" >&2; cat "$WORK/router.log" >&2; exit 1
  fi
  curl -fs "$BASE/healthz" >/dev/null && break
  sleep 0.5
done
curl -fs "$BASE/readyz" | grep -q '^ok$'

echo "== start 3 workers"
for i in 1 2 3; do
  "$BIN" -join "$HOST:$CTRL_PORT" -worker -id "w$i" -worker-slots 2 \
    -heartbeat 200ms >"$WORK/w$i.log" 2>&1 &
  WORKER_PID[w$i]=$!
done

ready=0
for i in $(seq 1 60); do
  reach=$(curl -fs "$BASE/sched/stats" | json '["reachable"]' || echo 0)
  if [ "$reach" = 3 ]; then ready=1; break; fi
  sleep 0.5
done
if [ "$ready" != 1 ]; then
  echo "fleet never reached 3 workers; /sched/fleet:" >&2
  curl -fs "$BASE/sched/fleet" >&2 || true
  exit 1
fi
echo "3 workers reachable"

echo "== submit $RUNS slowed runs"
IDS=()
for i in $(seq 1 "$RUNS"); do
  ID=$(curl -fs -X POST \
    "$BASE/sched/submit?tenant=smoke&trace=small&regrid-delay-ms=150&checkpoint-every=1" \
    | json '["id"]')
  echo "submitted $ID"
  IDS+=("$ID")
done

# Find where the first run is executing, let it checkpoint a few regrids,
# then SIGKILL that worker process — no goodbye, no drain.
victim=
for i in $(seq 1 120); do
  st=$(curl -fs "$BASE/sched/status?id=${IDS[0]}")
  state=$(echo "$st" | json '["state"]')
  placement=$(echo "$st" | json '.get("placement","")')
  if [ "$state" = running ] && [ -n "$placement" ] && [ "$placement" != local ]; then
    victim=$placement
    break
  fi
  sleep 0.5
done
if [ -z "$victim" ]; then
  echo "run ${IDS[0]} never started on a worker" >&2
  curl -fs "$BASE/sched/runs" >&2 || true
  exit 1
fi
sleep 1 # several regrids at 150ms each: checkpoints exist now
echo "== SIGKILL $victim (pid ${WORKER_PID[$victim]}) mid-run"
kill -9 "${WORKER_PID[$victim]}"
unset "WORKER_PID[$victim]"

echo "== wait for every run to complete anyway"
for id in "${IDS[@]}"; do
  ok=0
  for i in $(seq 1 240); do
    state=$(curl -fs "$BASE/sched/status?id=$id" | json '["state"]')
    if [ "$state" = done ]; then ok=1; break; fi
    if [ "$state" = failed ]; then
      echo "run $id failed:" >&2
      curl -fs "$BASE/sched/status?id=$id" >&2
      exit 1
    fi
    sleep 0.5
  done
  if [ "$ok" != 1 ]; then
    echo "run $id did not finish; status:" >&2
    curl -fs "$BASE/sched/status?id=$id" >&2 || true
    exit 1
  fi
  echo "run $id done"
done

echo "== assert failover + eviction counters"
failovers=$(curl -fs "$BASE/sched/stats" | json '["failovers"]')
if [ "$failovers" -lt 1 ]; then
  echo "failovers = $failovers, want >= 1" >&2
  exit 1
fi
curl -fs "$BASE/metrics" | grep '^pragma_fleet_failovers_total' | grep -qv ' 0$'
curl -fs "$BASE/metrics" | grep '^pragma_fleet_evictions_total' | grep -qv ' 0$'
curl -fs "$BASE/metrics" | grep -q '^pragma_fleet_runs_total{outcome="done"} '"$RUNS"'$'
echo "failovers=$failovers"

echo "== graceful fleet drain"
curl -fs -X POST "$BASE/sched/drain" | json '["draining"]' | grep -q True
# The drained router and workers exit on their own.
wait "$ROUTER_PID"
for pid in "${WORKER_PID[@]}"; do
  wait "$pid" || true
done
echo "fleet smoke OK"

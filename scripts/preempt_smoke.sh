#!/usr/bin/env bash
# preempt_smoke.sh — weighted-fairness / checkpoint-preemption rehearsal.
#
# Boots a real pragma-node scheduler, floods it with a weight-1 tenant
# ("bg"), then — once bg has banked normalized service — floods a weight-4
# tenant ("vip") into the saturated pool, and requires:
#   * at least one checkpoint-based preemption fired
#     (pragma_sched_preemptions_total >= 1),
#   * over vip's contention window the weighted share holds: vip completes
#     ~4x bg's cost units (ratio asserted inside a lenient [2, 12] band —
#     vip also burns down the catch-up gap from joining late, which skews
#     the window above the steady-state 4:1),
#   * every submitted run — preempted ones included — still ends done,
#   * a graceful drain shuts the node down.
#
# Usage: scripts/preempt_smoke.sh [bind-host]
set -euo pipefail

HOST=${1:-127.0.0.1}
HTTP_PORT=19194
BASE="http://$HOST:$HTTP_PORT"
BG_RUNS=40
VIP_RUNS=20
TRACE_COST=41 # regrid intervals per trace=small run

WORK=$(mktemp -d)
BIN="$WORK/pragma-node"

cleanup() {
  if [ -n "${NODE_PID-}" ]; then
    kill "$NODE_PID" 2>/dev/null || true
    wait "$NODE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK" 2>/dev/null || true
}
trap cleanup EXIT

json() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

# gauge NAME TENANT — scrape one per-tenant gauge value (0 if unset).
gauge() {
  curl -fs "$BASE/metrics" | awk -v pat="^$1{tenant=\"$2\"} " \
    'index($0, substr(pat,2,length(pat)-1))==1 {print $2; found=1} END {if (!found) print 0}'
}
counter() {
  curl -fs "$BASE/metrics" | awk -v name="$1" '$1==name {print $2; found=1} END {if (!found) print 0}'
}

echo "== build"
go build -o "$BIN" ./cmd/pragma-node

echo "== start scheduler node"
"$BIN" -sched 2 -sched-checkpoint-root "$WORK/runs" \
  -sched-queue 256 -sched-tenant-limit 0 \
  -telemetry-addr "$HOST:$HTTP_PORT" >"$WORK/node.log" 2>&1 &
NODE_PID=$!
for i in $(seq 1 60); do
  if ! kill -0 "$NODE_PID" 2>/dev/null; then
    echo "pragma-node exited before serving" >&2; cat "$WORK/node.log" >&2; exit 1
  fi
  curl -fs "$BASE/healthz" >/dev/null && break
  sleep 0.5
done

IDS=()
flood() { # flood TENANT WEIGHT COUNT — submit COUNT runs in one curl process
  local tenant=$1 weight=$2 count=$3 urls=() out
  for i in $(seq 1 "$count"); do
    urls+=("$BASE/sched/submit?trace=small&tenant=$tenant&weight=$weight&name=$tenant-$i")
  done
  # One curl reusing one connection: a per-submit curl would take ~50ms
  # each, long enough for the pool to drain the flood as it is submitted.
  out=$(curl -fs -X POST "${urls[@]}" | python3 -c '
import json, sys
dec, s, i = json.JSONDecoder(), sys.stdin.read(), 0
while i < len(s):
    obj, i = dec.raw_decode(s, i)
    print(obj["id"])
    while i < len(s) and s[i].isspace():
        i += 1
')
  IDS+=($out)
}

echo "== flood tenant bg (weight 1)"
flood bg 1 "$BG_RUNS"

echo "== wait for bg to bank service"
# Tight poll: trace=small runs complete in fractions of a second, and vip
# must join while bg is still deep in its backlog.
for i in $(seq 1 2400); do
  BG0=$(gauge pragma_sched_tenant_cost bg)
  awk -v v="$BG0" 'BEGIN{exit !(v>0)}' && break
  sleep 0.02
done
awk -v v="$BG0" 'BEGIN{exit !(v>0)}' || {
  echo "bg never completed work; node log:" >&2; cat "$WORK/node.log" >&2; exit 1
}
echo "   bg cost at vip submit: $BG0"
# vip starts at normalized service 0 and first burns down the gap to bg's
# banked service (4*BG0 cost units) before steady 4:1 sharing begins. If
# the scrape was so slow that the gap swallows vip's whole backlog, the
# share assertion below would be vacuous — bail loudly instead.
if awk -v bg0="$BG0" -v vip="$((VIP_RUNS * TRACE_COST))" -v c="$TRACE_COST" \
    'BEGIN{exit !(4*bg0 >= vip - 2*c)}'; then
  echo "vip submitted too late (bg already at $BG0); machine too slow for this smoke" >&2
  exit 1
fi

echo "== flood tenant vip (weight 4) into the saturated pool"
flood vip 4 "$VIP_RUNS"

echo "== wait for vip's backlog to complete"
VIP_TOTAL=$((VIP_RUNS * TRACE_COST))
ok=0
for i in $(seq 1 480); do
  VIP=$(gauge pragma_sched_tenant_cost vip)
  if awk -v v="$VIP" -v want="$VIP_TOTAL" 'BEGIN{exit !(v>=want)}'; then
    ok=1; break
  fi
  sleep 0.25
done
if [ "$ok" != 1 ]; then
  echo "vip never finished its backlog (cost $VIP of $VIP_TOTAL); node log:" >&2
  tail -50 "$WORK/node.log" >&2; exit 1
fi
BG1=$(gauge pragma_sched_tenant_cost bg)

echo "== assert weighted share over the contention window"
# Expected bg progress while vip burned its backlog: vip first catches up
# the 4*BG0 normalized-service gap alone, then the remainder is shared
# 4:1, handing bg a quarter of it. Assert bg landed within 3x either side
# of that (runs complete in whole 41-unit quanta, hence the +-TRACE_COST
# slack), and that vip out-completed bg by at least 2x overall.
awk -v vip="$VIP_TOTAL" -v bg0="$BG0" -v bg1="$BG1" -v c="$TRACE_COST" 'BEGIN {
  bgd = bg1 - bg0
  if (bgd <= 0) { print "bg starved outright: delta " bgd; exit 1 }
  expected = (vip - 4 * bg0) / 4
  r = vip / bgd
  printf "   vip %d vs bg delta %g cost units: ratio %.2f (expected bg ~%g)\n", vip, bgd, r, expected
  if (r < 2.0) { print "vip/bg ratio " r " below 2: weighting not biting"; exit 1 }
  if (bgd < expected / 3 - c || bgd > expected * 3 + 2 * c) {
    print "bg delta " bgd " outside [" expected / 3 - c ", " expected * 3 + 2 * c "]"; exit 1
  }
}'

echo "== assert checkpoint preemptions fired"
PREEMPTIONS=$(counter pragma_sched_preemptions_total)
echo "   pragma_sched_preemptions_total: $PREEMPTIONS"
awk -v p="$PREEMPTIONS" 'BEGIN{exit !(p>=1)}' || {
  echo "no preemption fired" >&2; exit 1
}

echo "== assert every run (preempted included) ended done"
for id in "${IDS[@]}"; do
  done_ok=0
  for i in $(seq 1 480); do
    STATE=$(curl -fs "$BASE/sched/status?id=$id" | json '["state"]')
    [ "$STATE" = done ] && { done_ok=1; break; }
    if [ "$STATE" = failed ] || [ "$STATE" = cancelled ]; then
      echo "run $id ended $STATE" >&2
      curl -fs "$BASE/sched/status?id=$id" >&2; exit 1
    fi
    sleep 0.25
  done
  if [ "$done_ok" != 1 ]; then
    echo "run $id never finished" >&2
    curl -fs "$BASE/sched/status?id=$id" >&2; exit 1
  fi
done
curl -fs "$BASE/sched/runs" | python3 -c '
import json, sys
runs = json.load(sys.stdin)
if isinstance(runs, dict):
    runs = runs["runs"]
pre = [r for r in runs if r.get("preemptions")]
bad = [r["id"] for r in pre if r["state"] != "done"]
assert not bad, f"preempted runs not done: {bad}"
print(f"   {len(pre)} preempted run(s), all done")
'

echo "== drain"
curl -fs -X POST "$BASE/sched/drain" | json '["draining"]' | grep -q True
wait "$NODE_PID" || true
NODE_PID=
echo "preempt smoke ok"
